//! Tokenizer for MiniC.

use std::fmt;

/// A lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword-candidate.
    Ident(String),
    /// Integer literal (decimal, hex, or char).
    Number(i64),
    /// Keyword.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Fn,
    Var,
    Global,
    Const,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,
    Mem,
    Hcall,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "fn" => Keyword::Fn,
            "var" => Keyword::Var,
            "global" => Keyword::Global,
            "const" => Keyword::Const,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "mem" => Keyword::Mem,
            "hcall" => Keyword::Hcall,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated comments/char literals or unknown
/// characters.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let kind = match Keyword::from_str(&word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, line });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let radix = if c == '0' && i + 1 < n && (chars[i + 1] == 'x' || chars[i + 1] == 'X')
                {
                    i += 2;
                    16
                } else {
                    10
                };
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().filter(|&&ch| ch != '_').collect();
                let digits = if radix == 16 { &text[2..] } else { &text[..] };
                let value = i64::from_str_radix(digits, radix).map_err(|_| LexError {
                    line,
                    message: format!("bad number literal `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            '\'' => {
                // char literal: 'a' or '\n' '\\' '\'' '\0'
                if i + 2 >= n {
                    return Err(LexError {
                        line,
                        message: "unterminated char literal".into(),
                    });
                }
                let (value, consumed) = if chars[i + 1] == '\\' {
                    let esc = chars[i + 2];
                    let v = match esc {
                        'n' => '\n' as i64,
                        't' => '\t' as i64,
                        'r' => '\r' as i64,
                        '0' => 0,
                        '\\' => '\\' as i64,
                        '\'' => '\'' as i64,
                        _ => {
                            return Err(LexError {
                                line,
                                message: format!("unknown escape `\\{esc}`"),
                            })
                        }
                    };
                    (v, 4)
                } else {
                    (chars[i + 1] as i64, 3)
                };
                if i + consumed > n || chars[i + consumed - 1] != '\'' {
                    return Err(LexError {
                        line,
                        message: "unterminated char literal".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
                i += consumed;
            }
            _ => {
                let two: Option<Punct> = if i + 1 < n {
                    match (c, chars[i + 1]) {
                        ('<', '<') => Some(Punct::Shl),
                        ('>', '>') => Some(Punct::Shr),
                        ('=', '=') => Some(Punct::EqEq),
                        ('!', '=') => Some(Punct::NotEq),
                        ('<', '=') => Some(Punct::Le),
                        ('>', '=') => Some(Punct::Ge),
                        ('&', '&') => Some(Punct::AndAnd),
                        ('|', '|') => Some(Punct::OrOr),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(p) = two {
                    tokens.push(Token {
                        kind: TokenKind::Punct(p),
                        line,
                    });
                    i += 2;
                    continue;
                }
                let one = match c {
                    '(' => Punct::LParen,
                    ')' => Punct::RParen,
                    '{' => Punct::LBrace,
                    '}' => Punct::RBrace,
                    '[' => Punct::LBracket,
                    ']' => Punct::RBracket,
                    ',' => Punct::Comma,
                    ';' => Punct::Semi,
                    '=' => Punct::Assign,
                    '+' => Punct::Plus,
                    '-' => Punct::Minus,
                    '*' => Punct::Star,
                    '/' => Punct::Slash,
                    '%' => Punct::Percent,
                    '&' => Punct::Amp,
                    '|' => Punct::Pipe,
                    '^' => Punct::Caret,
                    '~' => Punct::Tilde,
                    '!' => Punct::Bang,
                    '<' => Punct::Lt,
                    '>' => Punct::Gt,
                    _ => {
                        return Err(LexError {
                            line,
                            message: format!("unexpected character `{c}`"),
                        })
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Punct(one),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_idents_numbers() {
        let ks = kinds("fn foo(x) { var y = 0x1F; return y_2; }");
        assert!(ks.contains(&TokenKind::Keyword(Keyword::Fn)));
        assert!(ks.contains(&TokenKind::Ident("foo".into())));
        assert!(ks.contains(&TokenKind::Number(31)));
        assert!(ks.contains(&TokenKind::Ident("y_2".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn two_char_operators_win() {
        let ks = kinds("a <= b == c && d || e != f >> g << h");
        let ps: Vec<Punct> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(
            ps,
            vec![
                Punct::Le,
                Punct::EqEq,
                Punct::AndAnd,
                Punct::OrOr,
                Punct::NotEq,
                Punct::Shr,
                Punct::Shl
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // whole line\n/* block\nspanning */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn char_literals() {
        assert_eq!(kinds("'a'")[0], TokenKind::Number('a' as i64));
        assert_eq!(kinds("'\\n'")[0], TokenKind::Number(10));
        assert_eq!(kinds("'\\0'")[0], TokenKind::Number(0));
        assert_eq!(kinds("'/'")[0], TokenKind::Number('/' as i64));
    }

    #[test]
    fn errors_reported_with_line() {
        let e = lex("ok\n$bad").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("/* never ends").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("0xZZ").is_err());
    }

    #[test]
    fn underscores_in_numbers() {
        assert_eq!(kinds("1_000_000")[0], TokenKind::Number(1_000_000));
    }
}
