//! Code generation with *canonical idioms*.
//!
//! The generated shapes are deliberately uniform because the G-SWFIT
//! operator library pattern-matches them (see crate docs). The conventions:
//!
//! * **Frame**: `push fp; mov fp, sp; addi sp, sp, -N`; local slot *k* lives
//!   at `[fp-k]`; parameters are spilled to the first slots in order.
//! * **Expressions** evaluate into a stack of temporaries `r10..r25`,
//!   left-to-right.
//! * **Conditions** are compiled with branch-false jumps (`beqz`), `&&`
//!   chains share one false-target, `||` uses a true-skip label.
//! * **Calls** move evaluated arguments into `r2..r9`, then `call`; the
//!   result is in `r1` and is only read when the source uses it.
//! * **Globals** live at absolute data addresses accessed via `[r0+addr]`.

use std::collections::BTreeMap;
use std::fmt;

use mvm::{CodeImage, FuncInfo, Instr, Opcode, Reg};

use crate::ast::{BinOp, Expr, Func, Item, Stmt, UnOp};
use crate::construct::{Construct, ConstructKind};
use crate::program::{Program, GLOBALS_BASE};

/// A compilation failure with its 1-based source line (0 when the problem is
/// not tied to a line, e.g. a link error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line, or 0.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

fn err(line: usize, message: impl Into<String>) -> CompileError {
    CompileError {
        line,
        message: message.into(),
    }
}

/// Number of expression temporaries (`r10..r25`).
const TEMP_COUNT: u8 = 16;

/// Generates a linked [`Program`] from parsed items.
///
/// # Errors
///
/// Returns a [`CompileError`] on semantic errors (duplicate or undefined
/// names, arity mismatches, over-deep expressions, out-of-range literals).
pub fn generate(name: &str, items: &[Item]) -> Result<Program, CompileError> {
    let mut cg = Codegen::default();

    // Pass A: collect consts, globals and function signatures.
    for item in items {
        match item {
            Item::Const { name, value, line } => {
                let v = cg.fold_const(value, *line)?;
                if cg.consts.insert(name.clone(), v).is_some() {
                    return Err(err(*line, format!("duplicate const `{name}`")));
                }
            }
            Item::Global { name, init, line } => {
                if cg.consts.contains_key(name) || cg.globals.contains_key(name) {
                    return Err(err(*line, format!("duplicate global `{name}`")));
                }
                let addr = GLOBALS_BASE + cg.globals.len() as i64;
                cg.globals.insert(name.clone(), addr);
                if let Some(e) = init {
                    let v = cg.fold_const(e, *line)?;
                    cg.global_inits.push((addr, v));
                }
            }
            Item::Func(f) => {
                if cg
                    .func_sigs
                    .insert(f.name.clone(), f.params.len())
                    .is_some()
                {
                    return Err(err(f.line, format!("duplicate function `{}`", f.name)));
                }
            }
        }
    }

    // Pass B: emit every function.
    for item in items {
        if let Item::Func(f) = item {
            cg.emit_func(f)?;
        }
    }

    // Pass C: resolve call fixups.
    for fixup in std::mem::take(&mut cg.call_fixups) {
        let entry = *cg
            .func_entries
            .get(&fixup.callee)
            .ok_or_else(|| err(fixup.line, format!("unknown function `{}`", fixup.callee)))?;
        let arity = cg.func_sigs[&fixup.callee];
        if arity != fixup.arity {
            return Err(err(
                fixup.line,
                format!(
                    "`{}` takes {arity} argument(s), called with {}",
                    fixup.callee, fixup.arity
                ),
            ));
        }
        cg.code[fixup.at as usize] = Instr::call(entry);
    }

    let data_end = GLOBALS_BASE + cg.globals.len() as i64;
    let image = CodeImage::link(name, &cg.code, cg.funcs).map_err(|e| err(0, e.to_string()))?;
    Ok(Program::new(
        image,
        cg.globals,
        cg.global_inits,
        cg.constructs,
        data_end,
    ))
}

#[derive(Debug)]
struct CallFixup {
    at: u32,
    callee: String,
    arity: usize,
    line: usize,
}

#[derive(Default, Debug)]
struct Codegen {
    code: Vec<Instr>,
    funcs: Vec<FuncInfo>,
    func_entries: BTreeMap<String, u32>,
    func_sigs: BTreeMap<String, usize>,
    consts: BTreeMap<String, i64>,
    globals: BTreeMap<String, i64>,
    global_inits: Vec<(i64, i64)>,
    constructs: Vec<Construct>,
    call_fixups: Vec<CallFixup>,
    // per-function state
    locals: BTreeMap<String, i64>, // name -> slot (1-based)
    labels: Vec<Option<u32>>,
    label_fixups: Vec<(u32, usize)>, // (instr addr, label id)
    loop_stack: Vec<(usize, usize)>, // (continue label, break label)
    in_decl_region: bool,
}

impl Codegen {
    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, i: Instr) -> u32 {
        let at = self.here();
        self.code.push(i);
        at
    }

    fn fresh_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn place_label(&mut self, id: usize) {
        debug_assert!(self.labels[id].is_none(), "label placed twice");
        self.labels[id] = Some(self.here());
    }

    /// Emits a branch/jump whose target is patched once `label` is placed.
    fn emit_branch(&mut self, template: Instr, label: usize) -> u32 {
        let at = self.emit(template);
        self.label_fixups.push((at, label));
        at
    }

    fn resolve_labels(&mut self) -> Result<(), CompileError> {
        for (at, id) in std::mem::take(&mut self.label_fixups) {
            let target = self.labels[id].expect("every label is placed before function end");
            self.code[at as usize] = self.code[at as usize].with_target(target);
        }
        self.labels.clear();
        Ok(())
    }

    fn fold_const(&self, e: &Expr, line: usize) -> Result<i64, CompileError> {
        match e {
            Expr::Number(n) => Ok(*n),
            Expr::Var(name) => self
                .consts
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("`{name}` is not a compile-time constant"))),
            Expr::Un { op, operand } => {
                let v = self.fold_const(operand, line)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                    UnOp::BitNot => !v,
                })
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = self.fold_const(lhs, line)?;
                let b = self.fold_const(rhs, line)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a.wrapping_div(b),
                    BinOp::Mod if b != 0 => a.wrapping_rem(b),
                    BinOp::Div | BinOp::Mod => return Err(err(line, "constant division by zero")),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a << (b & 63),
                    BinOp::Shr => a >> (b & 63),
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::LAnd => ((a != 0) && (b != 0)) as i64,
                    BinOp::LOr => ((a != 0) || (b != 0)) as i64,
                })
            }
            _ => Err(err(line, "expression is not a compile-time constant")),
        }
    }

    fn temp(depth: u8, line: usize) -> Result<Reg, CompileError> {
        if depth >= TEMP_COUNT {
            return Err(err(line, "expression too complex (temporary overflow)"));
        }
        Ok(Reg::new(Reg::T0.index() as u8 + depth).expect("temp in range"))
    }

    // ----- functions ---------------------------------------------------

    fn emit_func(&mut self, f: &Func) -> Result<(), CompileError> {
        if f.params.len() > 8 {
            return Err(err(f.line, "at most 8 parameters supported by the ABI"));
        }
        let entry = self.here();
        self.func_entries.insert(f.name.clone(), entry);
        self.locals.clear();
        self.labels.clear();
        self.label_fixups.clear();
        self.loop_stack.clear();
        self.in_decl_region = true;

        // Collect the frame: params first, then every `var` in the body.
        for p in &f.params {
            let slot = self.locals.len() as i64 + 1;
            if self.locals.insert(p.clone(), slot).is_some() {
                return Err(err(f.line, format!("duplicate parameter `{p}`")));
            }
        }
        collect_locals(&f.body, &mut self.locals)?;
        let frame = self.locals.len() as i64;
        if frame > 256 {
            return Err(err(f.line, "function frame too large"));
        }

        // Prologue.
        self.emit(Instr::push(Reg::FP));
        self.emit(Instr::mov(Reg::FP, Reg::SP));
        self.emit(Instr::addi(Reg::SP, Reg::SP, -(frame as i32)));
        for (i, p) in f.params.iter().enumerate() {
            let slot = self.locals[p];
            self.emit(Instr::store(Reg::FP, -(slot as i32), Reg::arg(i)));
        }

        self.emit_block(&f.body)?;

        // Implicit `return 0;` for fall-through.
        self.emit_epilogue(None)?;
        self.resolve_labels()?;

        self.funcs.push(FuncInfo {
            name: f.name.clone(),
            entry,
            end: self.here(),
        });
        Ok(())
    }

    fn emit_epilogue(&mut self, value_reg: Option<Reg>) -> Result<(), CompileError> {
        match value_reg {
            Some(r) => {
                if r != Reg::RV {
                    self.emit(Instr::mov(Reg::RV, r));
                }
            }
            None => {
                self.emit(Instr::ldi(Reg::RV, 0));
            }
        }
        self.emit(Instr::mov(Reg::SP, Reg::FP));
        self.emit(Instr::pop(Reg::FP));
        self.emit(Instr::ret());
        Ok(())
    }

    // ----- statements ---------------------------------------------------

    fn emit_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.emit_stmt(s)?;
        }
        Ok(())
    }

    fn emit_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        // Any non-declaration statement ends the declaration region that the
        // MVI-vs-MVAV distinction relies on.
        if !matches!(s, Stmt::VarDecl { .. }) {
            self.in_decl_region = false;
        }
        match s {
            Stmt::VarDecl { name, init, line } => {
                if let Some(e) = init {
                    let start = self.here();
                    let literal = e.is_literal();
                    let r = self.emit_expr(e, 0, *line)?;
                    let slot = self.locals[name];
                    self.emit(Instr::store(Reg::FP, -(slot as i32), r));
                    let kind = if literal && self.in_decl_region {
                        ConstructKind::LocalInitConst
                    } else if literal {
                        ConstructKind::AssignConst
                    } else {
                        ConstructKind::LocalInitExpr
                    };
                    self.constructs.push(Construct {
                        kind,
                        start,
                        end: self.here(),
                        branch_at: 0,
                        aux: slot,
                    });
                }
                Ok(())
            }
            Stmt::Assign { name, value, line } => {
                let start = self.here();
                let literal = value.is_literal();
                let r = self.emit_expr(value, 0, *line)?;
                if let Some(&slot) = self.locals.get(name) {
                    self.emit(Instr::store(Reg::FP, -(slot as i32), r));
                } else if let Some(&addr) = self.globals.get(name) {
                    let addr = i32::try_from(addr)
                        .map_err(|_| err(*line, "global address out of range"))?;
                    self.emit(Instr::store(Reg::ZERO, addr, r));
                } else {
                    return Err(err(*line, format!("undefined variable `{name}`")));
                }
                self.constructs.push(Construct {
                    kind: if literal {
                        ConstructKind::AssignConst
                    } else {
                        ConstructKind::AssignExpr
                    },
                    start,
                    end: self.here(),
                    branch_at: 0,
                    aux: 0,
                });
                Ok(())
            }
            Stmt::MemWrite { addr, value, line } => {
                let ra = self.emit_expr(addr, 0, *line)?;
                let rv = self.emit_expr(value, 1, *line)?;
                self.emit(Instr::store(ra, 0, rv));
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let cond_start = self.here();
                if else_body.is_empty() {
                    let l_end = self.fresh_label();
                    let branch_at = self.emit_cond_false(cond, l_end, *line)?;
                    self.emit_block(then_body)?;
                    self.place_label(l_end);
                    self.constructs.push(Construct {
                        kind: ConstructKind::IfNoElse,
                        start: cond_start,
                        end: self.here(),
                        branch_at,
                        aux: 0,
                    });
                } else {
                    let l_else = self.fresh_label();
                    let l_end = self.fresh_label();
                    self.emit_cond_false(cond, l_else, *line)?;
                    self.emit_block(then_body)?;
                    self.emit_branch(Instr::jmp(0), l_end);
                    self.place_label(l_else);
                    self.emit_block(else_body)?;
                    self.place_label(l_end);
                }
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let l_head = self.fresh_label();
                let l_end = self.fresh_label();
                self.place_label(l_head);
                self.emit_cond_false(cond, l_end, *line)?;
                self.loop_stack.push((l_head, l_end));
                self.emit_block(body)?;
                self.loop_stack.pop();
                self.emit_branch(Instr::jmp(0), l_head);
                self.place_label(l_end);
                Ok(())
            }
            Stmt::Break { line } => {
                let &(_, l_end) = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| err(*line, "`break` outside loop"))?;
                self.emit_branch(Instr::jmp(0), l_end);
                Ok(())
            }
            Stmt::Continue { line } => {
                let &(l_head, _) = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| err(*line, "`continue` outside loop"))?;
                self.emit_branch(Instr::jmp(0), l_head);
                Ok(())
            }
            Stmt::Return { value, line } => {
                let r = match value {
                    Some(e) => Some(self.emit_expr(e, 0, *line)?),
                    None => None,
                };
                self.emit_epilogue(r)
            }
            Stmt::Expr { expr, line } => {
                self.emit_expr_for_effect(expr, *line)?;
                Ok(())
            }
        }
    }

    // ----- conditions ---------------------------------------------------

    /// Emits "jump to `label` when `e` is false"; returns the address of the
    /// *last* branch emitted (the one recorded for `IfNoElse`).
    fn emit_cond_false(
        &mut self,
        e: &Expr,
        label: usize,
        line: usize,
    ) -> Result<u32, CompileError> {
        match e {
            Expr::Bin {
                op: BinOp::LAnd,
                lhs,
                rhs,
            } => {
                self.emit_cond_false(lhs, label, line)?;
                let clause_start = self.here();
                let branch_at = self.emit_cond_false(rhs, label, line)?;
                self.constructs.push(Construct {
                    kind: ConstructKind::AndClause,
                    start: clause_start,
                    end: branch_at + 1,
                    branch_at,
                    aux: 0,
                });
                Ok(branch_at)
            }
            Expr::Bin {
                op: BinOp::LOr,
                lhs,
                rhs,
            } => {
                let l_true = self.fresh_label();
                self.emit_cond_true(lhs, l_true, line)?;
                let branch_at = self.emit_cond_false(rhs, label, line)?;
                self.place_label(l_true);
                Ok(branch_at)
            }
            Expr::Un {
                op: UnOp::Not,
                operand,
            } => self.emit_cond_true(operand, label, line),
            _ => {
                let r = self.emit_expr(e, 0, line)?;
                let at = self.emit_branch(Instr::beqz(r, 0), label);
                self.constructs.push(Construct {
                    kind: ConstructKind::CondBranch,
                    start: at,
                    end: at + 1,
                    branch_at: at,
                    aux: 0,
                });
                Ok(at)
            }
        }
    }

    /// Emits "jump to `label` when `e` is true"; returns the last branch.
    fn emit_cond_true(&mut self, e: &Expr, label: usize, line: usize) -> Result<u32, CompileError> {
        match e {
            Expr::Bin {
                op: BinOp::LAnd,
                lhs,
                rhs,
            } => {
                let l_false = self.fresh_label();
                self.emit_cond_false(lhs, l_false, line)?;
                let branch_at = self.emit_cond_true(rhs, label, line)?;
                self.place_label(l_false);
                Ok(branch_at)
            }
            Expr::Bin {
                op: BinOp::LOr,
                lhs,
                rhs,
            } => {
                self.emit_cond_true(lhs, label, line)?;
                self.emit_cond_true(rhs, label, line)
            }
            Expr::Un {
                op: UnOp::Not,
                operand,
            } => self.emit_cond_false(operand, label, line),
            _ => {
                let r = self.emit_expr(e, 0, line)?;
                let at = self.emit_branch(Instr::bnez(r, 0), label);
                self.constructs.push(Construct {
                    kind: ConstructKind::CondBranch,
                    start: at,
                    end: at + 1,
                    branch_at: at,
                    aux: 0,
                });
                Ok(at)
            }
        }
    }

    // ----- expressions ---------------------------------------------------

    /// Emits an expression statement; call results are deliberately unread
    /// so that "missing function call" sites are well-formed.
    fn emit_expr_for_effect(&mut self, e: &Expr, line: usize) -> Result<(), CompileError> {
        match e {
            Expr::Call { callee, args } => self.emit_call(callee, args, 0, false, line),
            Expr::Hcall { number, args } => self.emit_hcall(number, args, 0, false, line),
            _ => {
                self.emit_expr(e, 0, line)?;
                Ok(())
            }
        }
    }

    /// Evaluates `e` into the depth-th temporary and returns that register.
    fn emit_expr(&mut self, e: &Expr, depth: u8, line: usize) -> Result<Reg, CompileError> {
        let rt = Self::temp(depth, line)?;
        match e {
            Expr::Number(n) => {
                let imm = i32::try_from(*n)
                    .map_err(|_| err(line, format!("literal {n} out of 32-bit range")))?;
                self.emit(Instr::ldi(rt, imm));
            }
            Expr::Var(name) => {
                if let Some(&slot) = self.locals.get(name) {
                    self.emit(Instr::ld(rt, Reg::FP, -(slot as i32)));
                } else if let Some(&v) = self.consts.get(name) {
                    let imm = i32::try_from(v)
                        .map_err(|_| err(line, format!("const `{name}` out of 32-bit range")))?;
                    self.emit(Instr::ldi(rt, imm));
                } else if let Some(&addr) = self.globals.get(name) {
                    let addr = i32::try_from(addr)
                        .map_err(|_| err(line, "global address out of range"))?;
                    self.emit(Instr::ld(rt, Reg::ZERO, addr));
                } else {
                    return Err(err(line, format!("undefined variable `{name}`")));
                }
            }
            Expr::Un { op, operand } => {
                let r = self.emit_expr(operand, depth, line)?;
                match op {
                    UnOp::Neg => {
                        self.emit(Instr::alu3(Opcode::Sub, rt, Reg::ZERO, r));
                    }
                    UnOp::Not => {
                        self.emit(Instr::alu3(Opcode::Cmpeq, rt, r, Reg::ZERO));
                    }
                    UnOp::BitNot => {
                        self.emit(Instr::not(rt, r));
                    }
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let rl = self.emit_expr(lhs, depth, line)?;
                let rr = self.emit_expr(rhs, depth + 1, line)?;
                match op {
                    BinOp::Add => self.emit(Instr::alu3(Opcode::Add, rt, rl, rr)),
                    BinOp::Sub => self.emit(Instr::alu3(Opcode::Sub, rt, rl, rr)),
                    BinOp::Mul => self.emit(Instr::alu3(Opcode::Mul, rt, rl, rr)),
                    BinOp::Div => self.emit(Instr::alu3(Opcode::Div, rt, rl, rr)),
                    BinOp::Mod => self.emit(Instr::alu3(Opcode::Mod, rt, rl, rr)),
                    BinOp::And => self.emit(Instr::alu3(Opcode::And, rt, rl, rr)),
                    BinOp::Or => self.emit(Instr::alu3(Opcode::Or, rt, rl, rr)),
                    BinOp::Xor => self.emit(Instr::alu3(Opcode::Xor, rt, rl, rr)),
                    BinOp::Shl => self.emit(Instr::alu3(Opcode::Shl, rt, rl, rr)),
                    BinOp::Shr => self.emit(Instr::alu3(Opcode::Shr, rt, rl, rr)),
                    BinOp::Eq => self.emit(Instr::alu3(Opcode::Cmpeq, rt, rl, rr)),
                    BinOp::Ne => self.emit(Instr::alu3(Opcode::Cmpne, rt, rl, rr)),
                    BinOp::Lt => self.emit(Instr::alu3(Opcode::Cmplt, rt, rl, rr)),
                    BinOp::Le => self.emit(Instr::alu3(Opcode::Cmple, rt, rl, rr)),
                    BinOp::Gt => self.emit(Instr::alu3(Opcode::Cmplt, rt, rr, rl)),
                    BinOp::Ge => self.emit(Instr::alu3(Opcode::Cmple, rt, rr, rl)),
                    BinOp::LAnd => {
                        // Value context: normalized bitwise AND (no branches).
                        self.emit(Instr::alu3(Opcode::Cmpne, rl, rl, Reg::ZERO));
                        self.emit(Instr::alu3(Opcode::Cmpne, rr, rr, Reg::ZERO));
                        self.emit(Instr::alu3(Opcode::And, rt, rl, rr))
                    }
                    BinOp::LOr => {
                        self.emit(Instr::alu3(Opcode::Or, rt, rl, rr));
                        self.emit(Instr::alu3(Opcode::Cmpne, rt, rt, Reg::ZERO))
                    }
                };
            }
            Expr::MemRead { addr } => {
                let r = self.emit_expr(addr, depth, line)?;
                self.emit(Instr::ld(rt, r, 0));
            }
            Expr::Call { callee, args } => {
                self.emit_call(callee, args, depth, true, line)?;
            }
            Expr::Hcall { number, args } => {
                self.emit_hcall(number, args, depth, true, line)?;
            }
        }
        Ok(rt)
    }

    /// Emits a call: save live temps, evaluate arguments, move them into the
    /// argument registers, `call`, restore temps, and optionally capture `r1`.
    fn emit_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        depth: u8,
        want_result: bool,
        line: usize,
    ) -> Result<(), CompileError> {
        if args.len() > 8 {
            return Err(err(line, "at most 8 arguments supported by the ABI"));
        }
        // Save temporaries live below this expression depth.
        for d in 0..depth {
            self.emit(Instr::push(Self::temp(d, line)?));
        }
        // Evaluate arguments left-to-right into fresh temps…
        let mut arg_regs = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            arg_regs.push(self.emit_expr(a, depth + i as u8, line)?);
        }
        // …then marshal them into the ABI registers.
        for (i, &r) in arg_regs.iter().enumerate() {
            self.emit(Instr::mov(Reg::arg(i), r));
        }
        let at = self.emit(Instr::call(0)); // fixed up in pass C
        self.call_fixups.push(CallFixup {
            at,
            callee: callee.to_string(),
            arity: args.len(),
            line,
        });
        for d in (0..depth).rev() {
            self.emit(Instr::pop(Self::temp(d, line)?));
        }
        if want_result {
            let rt = Self::temp(depth, line)?;
            self.emit(Instr::mov(rt, Reg::RV));
        }
        self.constructs.push(Construct {
            kind: ConstructKind::CallSite,
            start: at,
            end: at + 1,
            branch_at: at,
            aux: want_result as i64,
        });
        Ok(())
    }

    fn emit_hcall(
        &mut self,
        number: &Expr,
        args: &[Expr],
        depth: u8,
        want_result: bool,
        line: usize,
    ) -> Result<(), CompileError> {
        if args.len() > 8 {
            return Err(err(line, "at most 8 hypercall arguments supported"));
        }
        let n = self.fold_const(number, line)?;
        let n = i32::try_from(n).map_err(|_| err(line, "hypercall number out of range"))?;
        for d in 0..depth {
            self.emit(Instr::push(Self::temp(d, line)?));
        }
        let mut arg_regs = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            arg_regs.push(self.emit_expr(a, depth + i as u8, line)?);
        }
        for (i, &r) in arg_regs.iter().enumerate() {
            self.emit(Instr::mov(Reg::arg(i), r));
        }
        self.emit(Instr::hcall(n));
        for d in (0..depth).rev() {
            self.emit(Instr::pop(Self::temp(d, line)?));
        }
        if want_result {
            let rt = Self::temp(depth, line)?;
            self.emit(Instr::mov(rt, Reg::RV));
        }
        Ok(())
    }
}

/// Recursively collects `var` declarations (flat function scope).
fn collect_locals(stmts: &[Stmt], locals: &mut BTreeMap<String, i64>) -> Result<(), CompileError> {
    for s in stmts {
        match s {
            Stmt::VarDecl { name, line, .. } => {
                let slot = locals.len() as i64 + 1;
                if locals.insert(name.clone(), slot).is_some() {
                    return Err(err(*line, format!("duplicate variable `{name}`")));
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_locals(then_body, locals)?;
                collect_locals(else_body, locals)?;
            }
            Stmt::While { body, .. } => collect_locals(body, locals)?,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use mvm::{CallError, Memory, NoHcalls, Trap, Vm};

    fn run(src: &str, func: &str, args: &[i64]) -> i64 {
        try_run(src, func, args).unwrap()
    }

    fn try_run(src: &str, func: &str, args: &[i64]) -> Result<i64, CallError> {
        let p = compile("t", src).unwrap_or_else(|e| panic!("compile error: {e}\n{src}"));
        let mut mem = Memory::new(65536);
        for &(a, v) in p.global_inits() {
            mem.write(a, v).unwrap();
        }
        let mut vm = Vm::new();
        vm.call(p.image(), &mut mem, &mut NoHcalls, func, args)
            .map(|o| o.return_value)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("fn f(a,b) { return a + b * 2; }", "f", &[3, 4]), 11);
        assert_eq!(run("fn f(a) { return (a + 1) * 3; }", "f", &[2]), 9);
        assert_eq!(run("fn f(a) { return -a; }", "f", &[5]), -5);
        assert_eq!(run("fn f(a,b) { return a % b; }", "f", &[10, 3]), 1);
        assert_eq!(run("fn f(a,b) { return a / b; }", "f", &[10, 3]), 3);
    }

    #[test]
    fn comparisons_including_swapped_forms() {
        assert_eq!(run("fn f(a,b) { return a > b; }", "f", &[5, 3]), 1);
        assert_eq!(run("fn f(a,b) { return a >= b; }", "f", &[3, 3]), 1);
        assert_eq!(run("fn f(a,b) { return a < b; }", "f", &[5, 3]), 0);
        assert_eq!(run("fn f(a,b) { return a != b; }", "f", &[5, 3]), 1);
        assert_eq!(run("fn f(a) { return !a; }", "f", &[0]), 1);
        assert_eq!(run("fn f(a) { return ~a; }", "f", &[0]), -1);
    }

    #[test]
    fn bitwise_and_shift() {
        assert_eq!(run("fn f(a,b) { return a & b; }", "f", &[12, 10]), 8);
        assert_eq!(run("fn f(a,b) { return a | b; }", "f", &[12, 10]), 14);
        assert_eq!(run("fn f(a,b) { return a ^ b; }", "f", &[12, 10]), 6);
        assert_eq!(run("fn f(a) { return a << 3; }", "f", &[1]), 8);
        assert_eq!(run("fn f(a) { return a >> 2; }", "f", &[64]), 16);
    }

    #[test]
    fn if_else_and_chains() {
        let src = r#"
            fn classify(x) {
                if (x < 0) { return -1; }
                else if (x == 0) { return 0; }
                else { return 1; }
            }
        "#;
        assert_eq!(run(src, "classify", &[-9]), -1);
        assert_eq!(run(src, "classify", &[0]), 0);
        assert_eq!(run(src, "classify", &[9]), 1);
    }

    #[test]
    fn logical_ops_in_conditions() {
        let src = r#"
            fn f(a, b, c) {
                if (a > 0 && b > 0 && c > 0) { return 3; }
                if (a > 0 || b > 0) { return 2; }
                if (!(a == 0)) { return 1; }
                return 0;
            }
        "#;
        assert_eq!(run(src, "f", &[1, 1, 1]), 3);
        assert_eq!(run(src, "f", &[0, 1, 0]), 2);
        assert_eq!(run(src, "f", &[-1, 0, 0]), 1);
        assert_eq!(run(src, "f", &[0, 0, 0]), 0);
    }

    #[test]
    fn logical_ops_in_value_context() {
        assert_eq!(run("fn f(a,b) { return a && b; }", "f", &[5, 7]), 1);
        assert_eq!(run("fn f(a,b) { return a && b; }", "f", &[5, 0]), 0);
        assert_eq!(run("fn f(a,b) { return a || b; }", "f", &[0, 7]), 1);
        assert_eq!(run("fn f(a,b) { return a || b; }", "f", &[0, 0]), 0);
    }

    #[test]
    fn while_loop_break_continue() {
        let src = r#"
            fn sum_odds(n) {
                var i = 0;
                var acc = 0;
                while (1) {
                    i = i + 1;
                    if (i > n) { break; }
                    if (i % 2 == 0) { continue; }
                    acc = acc + i;
                }
                return acc;
            }
        "#;
        assert_eq!(run(src, "sum_odds", &[10]), 25);
    }

    #[test]
    fn locals_params_globals() {
        let src = r#"
            global counter = 100;
            fn bump(by) {
                var old = counter;
                counter = counter + by;
                return old;
            }
            fn twice(by) {
                bump(by);
                return bump(by);
            }
        "#;
        assert_eq!(run(src, "twice", &[5]), 105);
    }

    #[test]
    fn consts_fold() {
        let src = r#"
            const A = 10;
            const B = A * 4 + 2;
            fn f() { return B; }
        "#;
        assert_eq!(run(src, "f", &[]), 42);
    }

    #[test]
    fn mem_intrinsics() {
        let src = r#"
            fn swap(p, q) {
                var t = mem[p];
                mem[p] = mem[q];
                mem[q] = t;
                return 0;
            }
            fn test() {
                mem[100] = 7;
                mem[101] = 9;
                swap(100, 101);
                return mem[100] * 10 + mem[101];
            }
        "#;
        assert_eq!(run(src, "test", &[]), 97);
    }

    #[test]
    fn nested_and_recursive_calls() {
        let src = r#"
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        "#;
        assert_eq!(run(src, "fib", &[10]), 55);
    }

    #[test]
    fn call_in_expression_preserves_temps() {
        let src = r#"
            fn g(x) { return x * 2; }
            fn f(a) { return a + g(a) + g(a + 1); }
        "#;
        // 3 + 6 + 8 = 17
        assert_eq!(run(src, "f", &[3]), 17);
    }

    #[test]
    fn bare_return_yields_zero() {
        assert_eq!(run("fn f() { return; }", "f", &[]), 0);
        assert_eq!(run("fn f() { }", "f", &[]), 0);
    }

    #[test]
    fn division_by_zero_traps() {
        let e = try_run("fn f(a) { return 1 / a; }", "f", &[0]).unwrap_err();
        assert!(matches!(e.trap(), Some(Trap::DivideByZero { .. })));
    }

    #[test]
    fn compile_errors() {
        let cases = [
            ("fn f() { return x; }", "undefined variable"),
            ("fn f() { var a; var a; }", "duplicate variable"),
            ("fn f(a, a) { }", "duplicate parameter"),
            ("fn f() { g(); }", "unknown function"),
            ("fn g(a) { } fn f() { g(); }", "takes 1 argument"),
            ("const C = 1; const C = 2;", "duplicate const"),
            ("fn f() { f(); } fn f() { }", "duplicate function"),
            ("fn f() { break; }", "`break` outside loop"),
            ("global g; global g;", "duplicate global"),
            ("const C = 1/0;", "constant division by zero"),
        ];
        for (src, want) in cases {
            let e = compile("t", src).unwrap_err();
            assert!(
                e.message.contains(want),
                "source `{src}`: expected `{want}`, got `{}`",
                e.message
            );
        }
    }

    #[test]
    fn canonical_if_pattern_is_beqz_over_body() {
        // The paper's operators depend on this exact idiom.
        let p = compile("t", "fn f(a) { if (a) { return 1; } return 2; }").unwrap();
        let f = p.image().func("f").unwrap().clone();
        let body = p.image().decode_range(f.entry, f.end).unwrap();
        // prologue: push fp / mov fp,sp / addi sp / st param
        assert_eq!(body[0], Instr::push(Reg::FP));
        assert_eq!(body[1], Instr::mov(Reg::FP, Reg::SP));
        assert!(matches!(body[2].op, Opcode::Addi));
        assert!(matches!(body[3].op, Opcode::St));
        // condition: ld a; beqz
        assert!(matches!(body[4].op, Opcode::Ld));
        assert_eq!(body[5].op, Opcode::Beqz);
        let target = body[5].target().unwrap();
        // body of the if is inside (branch target past the `return 1`).
        assert!(target > f.entry + 6 && target < f.end);
    }

    #[test]
    fn and_chain_shares_branch_target() {
        let p = compile("t", "fn f(a, b) { if (a && b) { return 1; } return 0; }").unwrap();
        let f = p.image().func("f").unwrap().clone();
        let body = p.image().decode_range(f.entry, f.end).unwrap();
        let branches: Vec<&Instr> = body.iter().filter(|i| i.op == Opcode::Beqz).collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].target(), branches[1].target());
    }

    #[test]
    fn construct_map_records_ifs_calls_and_inits() {
        let src = r#"
            fn g(x) { return x; }
            fn f(a) {
                var v = 5;
                if (a > 0) { v = 7; }
                g(v);
                return g(a);
            }
        "#;
        let p = compile("t", src).unwrap();
        let kinds: Vec<ConstructKind> = p.constructs().iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&ConstructKind::LocalInitConst));
        assert!(kinds.contains(&ConstructKind::IfNoElse));
        assert!(kinds.contains(&ConstructKind::AssignConst));
        let calls: Vec<_> = p
            .constructs()
            .iter()
            .filter(|c| c.kind == ConstructKind::CallSite)
            .collect();
        assert_eq!(calls.len(), 2);
        // One statement call (result unused) and one used call.
        assert_eq!(calls.iter().filter(|c| c.aux == 0).count(), 1);
        assert_eq!(calls.iter().filter(|c| c.aux == 1).count(), 1);
    }

    #[test]
    fn global_inits_exported() {
        let p = compile("t", "global a = 3; global b; global c = -1;").unwrap();
        assert_eq!(p.globals().len(), 3);
        assert_eq!(p.global_inits().len(), 2);
        let a = p.global_addr("a").unwrap();
        assert!(p.global_inits().contains(&(a, 3)));
        assert_eq!(p.data_end(), crate::program::GLOBALS_BASE + 3);
    }

    #[test]
    fn too_deep_expression_is_rejected() {
        // 20 nested parenthesized additions exceed 16 temporaries.
        let mut e = String::from("a");
        for _ in 0..20 {
            e = format!("(a + {e})");
        }
        let src = format!("fn f(a) {{ return {e}; }}");
        let err = compile("t", &src).unwrap_err();
        assert!(err.message.contains("too complex"));
    }

    #[test]
    fn hcall_numbers_must_be_constant() {
        assert!(compile("t", "fn f(a) { return hcall(a); }").is_err());
        assert!(compile("t", "const N = 3; fn f() { return hcall(N, 1); }").is_ok());
    }
}
