//! `minic` — a small C-like language compiled to [`mvm`] machine code.
//!
//! The paper's G-SWFIT technique relies on one empirical fact: compilers
//! translate high-level programming constructs into *recognizable low-level
//! instruction patterns*, so a scanner that knows those patterns can locate —
//! and mutate — the machine code that a construct would have produced had the
//! fault been in the source. MiniC is the compiler that makes this true in
//! our substrate:
//!
//! * `if (c) { … }` compiles to *evaluate `c` into a temp; `beqz` over the
//!   body*,
//! * `a && b` in a condition compiles to *chained `beqz` to the same label*,
//! * `x = CONST;` compiles to `ldi rT, CONST; st [fp-k], rT`,
//! * calls pass arguments in `r2..r9`, return in `r1`.
//!
//! The compiler also emits a **construct map** — the ground-truth locations
//! of every source construct in the generated code. The G-SWFIT scanner
//! never sees this map (the paper's technique works from the executable
//! alone); it exists so tests and benches can measure scanner
//! precision/recall, reproducing the accuracy argument of the paper's
//! reference \[13\].
//!
//! # Example
//!
//! ```
//! use minic::compile;
//! use mvm::{Memory, NoHcalls, Vm};
//!
//! let program = compile(
//!     "demo",
//!     r#"
//!     fn max(a, b) {
//!         if (a < b) { return b; }
//!         return a;
//!     }
//!     "#,
//! )?;
//! let mut vm = Vm::new();
//! let mut mem = Memory::new(8192);
//! let out = vm.call(program.image(), &mut mem, &mut NoHcalls, "max", &[3, 9])?;
//! assert_eq!(out.return_value, 9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod construct;
pub mod lexer;
pub mod parser;
pub mod program;

pub use codegen::CompileError;
pub use construct::{Construct, ConstructKind};
pub use program::Program;

/// Compiles MiniC source into a linked [`Program`].
///
/// `name` becomes the image name (e.g. the OS edition).
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic or
/// semantic problem.
pub fn compile(name: &str, source: &str) -> Result<Program, CompileError> {
    let tokens = lexer::lex(source).map_err(|e| CompileError {
        line: e.line,
        message: e.message,
    })?;
    let items = parser::parse(&tokens)?;
    codegen::generate(name, &items)
}
