//! Ground-truth construct map emitted by the compiler.
//!
//! Each entry records where a source-level construct landed in the generated
//! code. The G-SWFIT scanner must *not* consult this map (the paper's
//! technique needs no source knowledge); it exists so that tests, examples
//! and benches can measure how precisely the pattern scanner rediscovers the
//! constructs — the accuracy evaluation the paper delegates to its
//! reference \[13\].

use serde::{Deserialize, Serialize};

/// What kind of construct a map entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstructKind {
    /// `if (cond) { body }` with no `else`: `start` is the first condition
    /// instruction, `branch_at` the `beqz`, `end` the branch target (one past
    /// the body). The MIFS and MIA operators target exactly this shape.
    IfNoElse,
    /// The trailing `&& clause` of a condition: `start` is the first
    /// instruction evaluating the clause, `branch_at` its `beqz`. Target of
    /// the MLAC operator.
    AndClause,
    /// A function-call site: `branch_at` holds the `call` address; `aux = 1`
    /// when the return value is used. Target of the MFC operator
    /// (`aux = 0` sites only).
    CallSite,
    /// `var x = <literal>;` — `start..end` covers `ldi` + store. Target of
    /// MVI (and of WVAV when reused as an assignment site).
    LocalInitConst,
    /// `var x = <expression>;` — initialization from a computed value.
    LocalInitExpr,
    /// `x = <literal>;` outside the declaration region. Target of MVAV/WVAV.
    AssignConst,
    /// `x = <expression>;` — target of MVAE.
    AssignExpr,
    /// A conditional branch compiled from an `if`/`while` condition
    /// (`branch_at` = the branch). Target of WLEC.
    CondBranch,
}

/// One construct-map entry. Address fields are instruction indices in the
/// linked image; unused fields are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Construct {
    /// Kind of construct.
    pub kind: ConstructKind,
    /// First instruction of the construct.
    pub start: u32,
    /// One past the last instruction of the construct.
    pub end: u32,
    /// The key branch/call instruction, where applicable.
    pub branch_at: u32,
    /// Kind-specific auxiliary value (see [`ConstructKind`]).
    pub aux: i64,
}

impl Construct {
    /// Number of instructions covered.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// True when the entry covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}
