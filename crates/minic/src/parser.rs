//! Recursive-descent parser for MiniC.

use crate::ast::{BinOp, Expr, Func, Item, Stmt, UnOp};
use crate::codegen::CompileError;
use crate::lexer::{Keyword, Punct, Token, TokenKind};

/// Parses a token stream into top-level items.
///
/// # Errors
///
/// Returns a [`CompileError`] on the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Vec<Item>, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(items)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct, what: &str) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        if self.eat_keyword(Keyword::Global) {
            let name = self.expect_ident("global name")?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Item::Global { name, init, line })
        } else if self.eat_keyword(Keyword::Const) {
            let name = self.expect_ident("const name")?;
            self.expect_punct(Punct::Assign, "`=`")?;
            let value = self.expr()?;
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Item::Const { name, value, line })
        } else if self.eat_keyword(Keyword::Fn) {
            let name = self.expect_ident("function name")?;
            self.expect_punct(Punct::LParen, "`(`")?;
            let mut params = Vec::new();
            if !self.eat_punct(Punct::RParen) {
                loop {
                    params.push(self.expect_ident("parameter name")?);
                    if self.eat_punct(Punct::RParen) {
                        break;
                    }
                    self.expect_punct(Punct::Comma, "`,`")?;
                }
            }
            let body = self.block()?;
            Ok(Item::Func(Func {
                name,
                params,
                body,
                line,
            }))
        } else {
            Err(self.error("expected `fn`, `global` or `const`"))
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct(Punct::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.eat_keyword(Keyword::Var) {
            let name = self.expect_ident("variable name")?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Stmt::VarDecl { name, init, line })
        } else if self.eat_keyword(Keyword::If) {
            self.expect_punct(Punct::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen, "`)`")?;
            let then_body = self.block()?;
            let else_body = if self.eat_keyword(Keyword::Else) {
                if self.peek() == &TokenKind::Keyword(Keyword::If) {
                    vec![self.stmt()?] // `else if` chains
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            Ok(Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            })
        } else if self.eat_keyword(Keyword::While) {
            self.expect_punct(Punct::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen, "`)`")?;
            let body = self.block()?;
            Ok(Stmt::While { cond, body, line })
        } else if self.eat_keyword(Keyword::Break) {
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Stmt::Break { line })
        } else if self.eat_keyword(Keyword::Continue) {
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Stmt::Continue { line })
        } else if self.eat_keyword(Keyword::Return) {
            let value = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Stmt::Return { value, line })
        } else if self.eat_keyword(Keyword::Mem) {
            self.expect_punct(Punct::LBracket, "`[`")?;
            let addr = self.expr()?;
            self.expect_punct(Punct::RBracket, "`]`")?;
            self.expect_punct(Punct::Assign, "`=`")?;
            let value = self.expr()?;
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Stmt::MemWrite { addr, value, line })
        } else if let TokenKind::Ident(name) = self.peek().clone() {
            // Could be `x = expr;` or an expression statement `f(...)`.
            if self.tokens[self.pos + 1].kind == TokenKind::Punct(Punct::Assign) {
                self.bump();
                self.bump();
                let value = self.expr()?;
                self.expect_punct(Punct::Semi, "`;`")?;
                Ok(Stmt::Assign { name, value, line })
            } else {
                let expr = self.expr()?;
                self.expect_punct(Punct::Semi, "`;`")?;
                Ok(Stmt::Expr { expr, line })
            }
        } else {
            let expr = self.expr()?;
            self.expect_punct(Punct::Semi, "`;`")?;
            Ok(Stmt::Expr { expr, line })
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.logical_and()?;
        while self.eat_punct(Punct::OrOr) {
            let rhs = self.logical_and()?;
            lhs = Expr::Bin {
                op: BinOp::LOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_or()?;
        while self.eat_punct(Punct::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::Bin {
                op: BinOp::LAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_xor()?;
        while self.eat_punct(Punct::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_and()?;
        while self.eat_punct(Punct::Caret) {
            let rhs = self.bit_and()?;
            lhs = bin(BinOp::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality()?;
        while self.eat_punct(Punct::Amp) {
            let rhs = self.equality()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational()?;
        loop {
            if self.eat_punct(Punct::EqEq) {
                lhs = bin(BinOp::Eq, lhs, self.relational()?);
            } else if self.eat_punct(Punct::NotEq) {
                lhs = bin(BinOp::Ne, lhs, self.relational()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift()?;
        loop {
            if self.eat_punct(Punct::Lt) {
                lhs = bin(BinOp::Lt, lhs, self.shift()?);
            } else if self.eat_punct(Punct::Le) {
                lhs = bin(BinOp::Le, lhs, self.shift()?);
            } else if self.eat_punct(Punct::Gt) {
                lhs = bin(BinOp::Gt, lhs, self.shift()?);
            } else if self.eat_punct(Punct::Ge) {
                lhs = bin(BinOp::Ge, lhs, self.shift()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            if self.eat_punct(Punct::Shl) {
                lhs = bin(BinOp::Shl, lhs, self.additive()?);
            } else if self.eat_punct(Punct::Shr) {
                lhs = bin(BinOp::Shr, lhs, self.additive()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            if self.eat_punct(Punct::Plus) {
                lhs = bin(BinOp::Add, lhs, self.multiplicative()?);
            } else if self.eat_punct(Punct::Minus) {
                lhs = bin(BinOp::Sub, lhs, self.multiplicative()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat_punct(Punct::Star) {
                lhs = bin(BinOp::Mul, lhs, self.unary()?);
            } else if self.eat_punct(Punct::Slash) {
                lhs = bin(BinOp::Div, lhs, self.unary()?);
            } else if self.eat_punct(Punct::Percent) {
                lhs = bin(BinOp::Mod, lhs, self.unary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.eat_punct(Punct::Minus) {
            // Fold negation of literals so `-1` is a literal, not an op.
            let inner = self.unary()?;
            if let Expr::Number(n) = inner {
                return Ok(Expr::Number(n.wrapping_neg()));
            }
            Ok(Expr::Un {
                op: UnOp::Neg,
                operand: Box::new(inner),
            })
        } else if self.eat_punct(Punct::Bang) {
            Ok(Expr::Un {
                op: UnOp::Not,
                operand: Box::new(self.unary()?),
            })
        } else if self.eat_punct(Punct::Tilde) {
            Ok(Expr::Un {
                op: UnOp::BitNot,
                operand: Box::new(self.unary()?),
            })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            TokenKind::Keyword(Keyword::Mem) => {
                self.bump();
                self.expect_punct(Punct::LBracket, "`[`")?;
                let addr = self.expr()?;
                self.expect_punct(Punct::RBracket, "`]`")?;
                Ok(Expr::MemRead {
                    addr: Box::new(addr),
                })
            }
            TokenKind::Keyword(Keyword::Hcall) => {
                self.bump();
                self.expect_punct(Punct::LParen, "`(`")?;
                let number = self.expr()?;
                let mut args = Vec::new();
                while self.eat_punct(Punct::Comma) {
                    args.push(self.expr()?);
                }
                self.expect_punct(Punct::RParen, "`)`")?;
                Ok(Expr::Hcall {
                    number: Box::new(number),
                    args,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma, "`,`")?;
                        }
                    }
                    Ok(Expr::Call { callee: name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Vec<Item>, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_function_with_everything() {
        let items = parse_src(
            r#"
            const LIMIT = 10;
            global counter = 0;
            fn demo(a, b) {
                var x = 1;
                var y;
                if (a < b && x != 0) { x = x + 1; } else { x = 0; }
                while (x < LIMIT) {
                    x = x * 2;
                    if (x == 8) { break; }
                    continue;
                }
                mem[a] = x;
                y = mem[a];
                demo(y, b);
                return hcall(1, x);
            }
            "#,
        )
        .unwrap();
        assert_eq!(items.len(), 3);
        match &items[2] {
            Item::Func(f) => {
                assert_eq!(f.name, "demo");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 8);
            }
            other => panic!("expected fn, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let items = parse_src("const X = 1 + 2 * 3;").unwrap();
        match &items[0] {
            Item::Const { value, .. } => match value {
                Expr::Bin {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("bad tree: {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let items = parse_src("const X = 1 || 2 && 3;").unwrap();
        match &items[0] {
            Item::Const { value, .. } => {
                assert!(matches!(value, Expr::Bin { op: BinOp::LOr, .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn negative_literal_is_folded() {
        let items = parse_src("const X = -5;").unwrap();
        match &items[0] {
            Item::Const { value, .. } => assert_eq!(*value, Expr::Number(-5)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn else_if_chains() {
        let items = parse_src(
            "fn f(x) { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; } }",
        )
        .unwrap();
        match &items[0] {
            Item::Func(f) => match &f.body[0] {
                Stmt::If { else_body, .. } => {
                    assert!(matches!(else_body[0], Stmt::If { .. }));
                }
                _ => panic!("expected if"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_on_missing_semicolon() {
        let e = parse_src("fn f() { var x = 1 }").unwrap_err();
        assert!(e.message.contains("expected `;`"), "{}", e.message);
    }

    #[test]
    fn errors_on_bad_item() {
        assert!(parse_src("banana;").is_err());
        assert!(parse_src("fn f() { if x { } }").is_err());
        assert!(parse_src("fn f() {").is_err());
    }

    #[test]
    fn call_statement_and_empty_return() {
        let items = parse_src("fn f() { g(); return; }").unwrap();
        match &items[0] {
            Item::Func(f) => {
                assert!(matches!(
                    &f.body[0],
                    Stmt::Expr {
                        expr: Expr::Call { .. },
                        ..
                    }
                ));
                assert!(matches!(&f.body[1], Stmt::Return { value: None, .. }));
            }
            _ => unreachable!(),
        }
    }
}
