//! Abstract syntax tree for MiniC.

/// A top-level item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// `global name;` or `global name = <const expr>;`
    Global {
        /// Variable name.
        name: String,
        /// Optional boot-time initial value (must be a constant expression).
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `const NAME = <const expr>;`
    Const {
        /// Constant name.
        name: String,
        /// Value expression (folded at compile time).
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `fn name(params) { body }`
    Func(Func),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the header.
    pub line: usize,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `var name;` / `var name = expr;`
    VarDecl {
        /// Local name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `name = expr;`
    Assign {
        /// Target variable (local, parameter or global).
        name: String,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `mem[addr] = value;`
    MemWrite {
        /// Address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `if (cond) { then } else { else }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body (empty if absent).
        else_body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `while (cond) { body }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `break;`
    Break {
        /// Source line.
        line: usize,
    },
    /// `continue;`
    Continue {
        /// Source line.
        line: usize,
    },
    /// `return;` / `return expr;`
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// An expression evaluated for effect (virtually always a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: usize,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Logical `&&` (short-circuit in condition position).
    LAnd,
    /// Logical `||` (short-circuit in condition position).
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is `x == 0`).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Number(i64),
    /// Variable reference (local, parameter, global, or named const).
    Var(String),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `mem[addr]`
    MemRead {
        /// Address expression.
        addr: Box<Expr>,
    },
    /// `f(args...)`
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `hcall(n, args...)` — hypercall to the device layer.
    Hcall {
        /// Hypercall number (constant).
        number: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// True for literal constants (used to distinguish the MVAV/WVAV
    /// "assignment of a value" patterns from MVAE "assignment of an
    /// expression").
    pub fn is_literal(&self) -> bool {
        matches!(self, Expr::Number(_))
    }
}
