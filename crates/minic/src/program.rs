//! The linked output of the MiniC compiler.

use std::collections::BTreeMap;

use mvm::CodeImage;
use serde::{Deserialize, Serialize};

use crate::construct::Construct;

/// First data-memory address handed to globals. Cells below are reserved for
/// the boot/ABI scratch area.
pub const GLOBALS_BASE: i64 = 16;

/// A compiled and linked MiniC program.
///
/// Wraps the executable [`CodeImage`] together with the data-layout and the
/// ground-truth [`Construct`] map.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    image: CodeImage,
    globals: BTreeMap<String, i64>,
    global_inits: Vec<(i64, i64)>,
    constructs: Vec<Construct>,
    data_end: i64,
}

impl Program {
    pub(crate) fn new(
        image: CodeImage,
        globals: BTreeMap<String, i64>,
        global_inits: Vec<(i64, i64)>,
        constructs: Vec<Construct>,
        data_end: i64,
    ) -> Program {
        Program {
            image,
            globals,
            global_inits,
            constructs,
            data_end,
        }
    }

    /// The executable image.
    pub fn image(&self) -> &CodeImage {
        &self.image
    }

    /// Mutable access to the image — the fault injector's patch point.
    pub fn image_mut(&mut self) -> &mut CodeImage {
        &mut self.image
    }

    /// Replaces the image (used when reloading a pristine copy).
    pub fn set_image(&mut self, image: CodeImage) {
        self.image = image;
    }

    /// Data address of each global variable.
    pub fn globals(&self) -> &BTreeMap<String, i64> {
        &self.globals
    }

    /// The data address of global `name`, if declared.
    pub fn global_addr(&self, name: &str) -> Option<i64> {
        self.globals.get(name).copied()
    }

    /// `(address, value)` pairs the host must write before first execution.
    pub fn global_inits(&self) -> &[(i64, i64)] {
        &self.global_inits
    }

    /// Ground-truth construct map (not visible to the scanner).
    pub fn constructs(&self) -> &[Construct] {
        &self.constructs
    }

    /// One past the highest data address used by globals.
    pub fn data_end(&self) -> i64 {
        self.data_end
    }
}
