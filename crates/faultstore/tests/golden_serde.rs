//! Golden-fixture test pinning the on-disk JSON schema of the persisted
//! artifact types: `Faultload` (fault-map cache entries), `SlotResult`
//! (journal records), `CampaignResult` (stored runs), `MetricsSummary`
//! (`faultbench campaign --out`) and `StopRecord` (durable early-stop
//! decisions).
//!
//! The store's whole value is that artifacts written by one build are
//! readable by the next. Any rename, reorder, type change or removed field
//! in these structs changes the serialized form and fails this test —
//! forcing the author to either restore compatibility or consciously bump
//! `faultstore::JOURNAL_SCHEMA` and re-bless.
//!
//! To re-bless after an intentional schema change:
//!
//! ```text
//! FAULTSTORE_BLESS=1 cargo test -p faultstore --test golden_serde
//! ```

use depbench::{
    aggregate_metrics, AvailabilityMetrics, CampaignResult, ConvergenceConfig,
    DependabilityMetrics, MetricsSummary, QuarantinedSlot, RequestCounts, SlotActivation,
    SlotError, SlotResult, WatchdogCounts,
};
use faultstore::StopRecord;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use simos::Edition;
use specweb::IntervalMeasures;
use swfit_core::{FaultDef, FaultType, Faultload};
use webserver::ServerKind;

#[derive(Serialize, Deserialize)]
struct Golden {
    faultload: Faultload,
    slot_result: SlotResult,
    campaign_result: CampaignResult,
    metrics_summary: MetricsSummary,
    stop_record: StopRecord,
}

fn measures() -> IntervalMeasures {
    let mut m = IntervalMeasures::new(2);
    m.record_op(0, 2048, false, SimDuration::from_millis(350));
    m.record_op(1, 1024, true, SimDuration::from_millis(900));
    m.record_op(1, 4096, false, SimDuration::from_millis(410));
    m.set_duration(SimDuration::from_secs(2));
    m
}

fn golden() -> Golden {
    let faultload = Faultload {
        target: "os".to_string(),
        fingerprint: Some(0x1234_5678_9abc_def0),
        faults: vec![FaultDef {
            id: "MIFS@rtl_alloc_heap+17".to_string(),
            fault_type: FaultType::Mifs,
            func: "rtl_alloc_heap".to_string(),
            site: 17,
            patches: vec![mvm::Patch {
                addr: 17,
                new_word: 0,
            }],
            note: "nop if-block".to_string(),
        }],
    };
    let watchdog = WatchdogCounts {
        mis: 1,
        kns: 2,
        kcp: 0,
    };
    let availability = {
        let mut a = AvailabilityMetrics::default();
        a.record_repair(SimDuration::from_millis(120));
        a.record_unrepaired(SimDuration::from_millis(80));
        a.set_observed(SimDuration::from_secs(2));
        a
    };
    let slot_result = SlotResult {
        fault_id: "MIFS@rtl_alloc_heap+17".to_string(),
        measures: measures(),
        watchdog,
        ended_dead: false,
        availability,
        activation: Some(SlotActivation {
            fault_type: "MIFS".to_string(),
            hits: 3,
            first_hit: Some(SimTime::from_micros(412_000)),
        }),
    };
    let campaign_result = CampaignResult {
        edition: Edition::Nimbus2000,
        server: ServerKind::Wren,
        measures: measures(),
        watchdog,
        availability,
        slots: vec![slot_result.clone()],
        quarantined: vec![QuarantinedSlot {
            slot: 1,
            fault_id: "WVAV@nt_open_file+4".to_string(),
            error: SlotError::Panicked {
                message: "index out of bounds".to_string(),
            },
        }],
    };
    let iteration_metrics = |spc_f: u32, thr_f: f64, errors: u64| DependabilityMetrics {
        spc_baseline: 20,
        thr_baseline: 206.0,
        rtm_baseline: 185.0,
        spc_f,
        thr_f,
        rtm_f: 221.5,
        er_pct_f: errors as f64 * 100.0 / 1000.0,
        watchdog,
        availability,
        activation: None,
        requests: Some(RequestCounts { ops: 1000, errors }),
    };
    let metrics_summary = aggregate_metrics(&[
        iteration_metrics(15, 176.9, 136),
        iteration_metrics(15, 179.8, 134),
    ])
    .expect("two iterations aggregate");
    let stop_record = StopRecord {
        schema: faultstore::JOURNAL_SCHEMA,
        edition: "nimbus-2000".to_string(),
        server: "wren".to_string(),
        config_hash: 0xfeed_beef_cafe_0042,
        faultload_fingerprint: Some(0x1234_5678_9abc_def0),
        faultload_hash: 0x0bad_f00d_dead_5eed,
        convergence: ConvergenceConfig {
            target_halfwidth_pct: 5.0,
            min_iters: 2,
            max_iters: 8,
        },
        stopped_at: 2,
        converged: true,
    };
    Golden {
        faultload,
        slot_result,
        campaign_result,
        metrics_summary,
        stop_record,
    }
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden.json")
}

#[test]
fn serialized_schema_matches_the_golden_fixture() {
    let json = serde_json::to_string_pretty(&golden()).expect("serializes");
    let path = fixture_path();
    if std::env::var("FAULTSTORE_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{json}\n")).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with FAULTSTORE_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        fixture.trim_end(),
        json,
        "persisted JSON schema changed; if intentional, bump \
         faultstore::JOURNAL_SCHEMA and re-bless with FAULTSTORE_BLESS=1"
    );
}

#[test]
fn pre_policy_artifacts_still_deserialize() {
    // A journal record / stored run written before the recovery subsystem
    // existed: no `availability` on slots, no `availability`/`quarantined`
    // on the campaign. Both must parse, defaulting the new fields — that is
    // what lets an old journal resume under a new binary.
    let measures_json = serde_json::to_string(&measures()).unwrap();
    let watchdog_json = r#"{"mis": 1, "kns": 0, "kcp": 0}"#;
    let old_slot = format!(
        r#"{{"fault_id": "MIFS@rtl_alloc_heap+17", "measures": {measures_json},
             "watchdog": {watchdog_json}, "ended_dead": false}}"#
    );
    let slot: SlotResult = serde_json::from_str(&old_slot).expect("pre-policy slot record parses");
    assert_eq!(slot.availability, AvailabilityMetrics::default());

    let old_campaign = format!(
        r#"{{"edition": "Nimbus2000", "server": "Wren", "measures": {measures_json},
             "watchdog": {watchdog_json}, "slots": [{old_slot}]}}"#
    );
    let run: CampaignResult =
        serde_json::from_str(&old_campaign).expect("pre-policy stored run parses");
    assert_eq!(run.availability, AvailabilityMetrics::default());
    assert!(run.quarantined.is_empty());
}

#[test]
fn pre_trace_artifacts_still_deserialize_under_schema_1() {
    // Activation is additive within schema 1: a record written by a
    // pre-trace (or untraced) binary has no `activation` key and must parse
    // to `None` — and an untraced slot must serialize *without* the key, so
    // untraced journals stay byte-identical to pre-trace ones.
    assert_eq!(
        faultstore::JOURNAL_SCHEMA,
        1,
        "activation fields are additive; schema must not bump"
    );
    let measures_json = serde_json::to_string(&measures()).unwrap();
    let old_slot = format!(
        r#"{{"fault_id": "MIFS@rtl_alloc_heap+17", "measures": {measures_json},
             "watchdog": {{"mis": 1, "kns": 0, "kcp": 0}}, "ended_dead": false}}"#
    );
    let slot: SlotResult = serde_json::from_str(&old_slot).expect("pre-trace slot record parses");
    assert!(slot.activation.is_none());
    let reserialized = serde_json::to_string(&slot).unwrap();
    assert!(
        !reserialized.contains("activation"),
        "untraced slot must omit the activation key: {reserialized}"
    );
}

#[test]
fn pre_stats_artifacts_still_deserialize_under_schema_1() {
    // The statistics engine's fields are additive within schema 1: a
    // metrics artifact written before `requests` existed must parse with
    // the counts absent — and re-serialize without the key, so artifacts
    // only ever gain fields when a binary that measured them writes them.
    assert_eq!(
        faultstore::JOURNAL_SCHEMA,
        1,
        "request counts and CIs are additive; schema must not bump"
    );
    let old_metrics = r#"{
        "spc_baseline": 20, "thr_baseline": 206.0, "rtm_baseline": 185.0,
        "spc_f": 15, "thr_f": 176.9, "rtm_f": 221.5, "er_pct_f": 13.6,
        "watchdog": {"mis": 1, "kns": 2, "kcp": 0}
    }"#;
    let m: DependabilityMetrics =
        serde_json::from_str(old_metrics).expect("pre-stats metrics parse");
    assert!(m.requests.is_none());
    let reserialized = serde_json::to_string(&m).unwrap();
    assert!(
        !reserialized.contains("requests"),
        "legacy metrics must omit the requests key: {reserialized}"
    );

    // The old `faultbench campaign --out` format — a bare array of
    // per-iteration metrics — still aggregates (unweighted ER%f fallback).
    let old_out = format!("[{old_metrics}, {old_metrics}]");
    let runs: Vec<DependabilityMetrics> =
        serde_json::from_str(&old_out).expect("pre-stats --out array parses");
    let summary = aggregate_metrics(&runs).expect("legacy runs aggregate");
    assert!(
        summary.ci95.er_pct_f.is_none(),
        "no counts, no bootstrap CI"
    );
    assert!((summary.mean.er_pct_f - 13.6).abs() < 1e-12);
}

#[test]
fn golden_fixture_still_deserializes() {
    if std::env::var("FAULTSTORE_BLESS").as_deref() == Ok("1") {
        return; // the sibling test is writing the fixture right now
    }
    let fixture = std::fs::read_to_string(fixture_path())
        .expect("fixture exists (bless with FAULTSTORE_BLESS=1)");
    let parsed: Golden = serde_json::from_str(&fixture).expect("old artifacts stay readable");
    // Round-trip sanity: parsing then re-serializing is the identity.
    assert_eq!(
        serde_json::to_string(&parsed).unwrap(),
        serde_json::to_string(&golden()).unwrap()
    );
}
