//! Fault-map cache versioning for pack-built scanners.
//!
//! A pack's content hash is embedded in every compiled operator's
//! `content_key`, so `Scanner::operator_set_hash` — one third of the cache
//! key — tracks pack *content*, not just pack name. Editing a pattern body
//! while keeping the pack name must therefore miss the cache and re-scan;
//! a byte-identical reload must hit.
//!
//! Everything runs in one test function: `faultstore::scan_count()` is a
//! process-global counter, and concurrent test threads would race the
//! `before`/`after` bookkeeping.

use faultpack::Pack;
use faultstore::{scan_count, FaultMapCache};
use minic::compile;
use swfit_core::Scanner;

const SRC: &str = r#"
    fn helper(x) { return x * 2; }
    fn alpha(a, b) {
        var r = 0;
        if (a > 0 && b > 0) { r = a + b; }
        helper(r);
        return r;
    }
"#;

/// A one-operator pack with a tunable pattern body, as JSON.
fn pack_json(max_body: usize) -> String {
    format!(
        r#"{{
            "name": "versioned",
            "version": "1.0.0",
            "operators": [
                {{ "name": "MIFS",
                   "fault_type": "Mifs",
                   "pattern": {{ "IfConstruct": {{ "max_body": {max_body} }} }},
                   "action": "NopConstruct",
                   "note": "remove if-construct ({{n}} instrs)" }}
            ]
        }}"#
    )
}

fn scanner_of(json: &str) -> Scanner {
    let pack = Pack::from_json_str(json, "inline").expect("pack is valid");
    faultpack::scanner_for(std::slice::from_ref(&pack)).expect("pack compiles")
}

#[test]
fn editing_a_pack_misses_the_cache_and_rescans() {
    let dir = std::env::temp_dir().join(format!("faultstore-packver-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = FaultMapCache::open(&dir).unwrap();
    let p = compile("os", SRC).unwrap();

    // v1: first scan misses, identical reload hits.
    let v1 = scanner_of(&pack_json(24));
    let before = scan_count();
    let first = cache.scan_image(&v1, p.image()).unwrap();
    assert_eq!(scan_count(), before + 1, "first pack scan is a miss");
    let again = cache
        .scan_image(&scanner_of(&pack_json(24)), p.image())
        .unwrap();
    assert_eq!(
        scan_count(),
        before + 1,
        "reloading the byte-identical pack must hit the cache"
    );
    assert_eq!(first, again);

    // v2: same pack name, edited pattern body — a different operator-set
    // hash, hence a different cache entry.
    let v2 = scanner_of(&pack_json(1));
    assert_ne!(
        v1.operator_set_hash(),
        v2.operator_set_hash(),
        "editing a pattern body must change the operator-set hash"
    );
    let narrowed = cache.scan_image(&v2, p.image()).unwrap();
    assert_eq!(
        scan_count(),
        before + 2,
        "an edited pack (same name) must miss the cache and re-scan"
    );
    assert!(
        narrowed.len() < first.len(),
        "the tighter max_body really changes what the scan finds"
    );
    // Both versions now coexist as separate entries.
    cache.scan_image(&v1, p.image()).unwrap();
    cache.scan_image(&v2, p.image()).unwrap();
    assert_eq!(
        scan_count(),
        before + 2,
        "both versions hit their own entry"
    );

    // Fingerprint-mismatch self-healing (the PR 6 warning path): tamper the
    // v1 entry so its embedded fingerprint no longer matches the booted
    // image. Every subsequent lookup must warn and re-scan — a mismatched
    // entry is never served, and the rewrite (same file name, same stale
    // story next time the image changes) keeps the cache self-healing.
    let key = faultstore::CacheKey::new(p.image(), &v1, None);
    let path = dir.join(key.file_name());
    let mut tampered =
        swfit_core::Faultload::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    tampered.fingerprint = tampered.fingerprint.map(|fp| fp ^ 1);
    std::fs::write(&path, tampered.to_json().unwrap()).unwrap();
    let healed = cache.scan_image(&v1, p.image()).unwrap();
    assert_eq!(
        scan_count(),
        before + 3,
        "a fingerprint-mismatched entry must re-scan, not be served"
    );
    assert_eq!(healed, first, "the re-scan reproduces the original map");
    // The rewrite carries the right fingerprint again, so the entry serves.
    cache.scan_image(&v1, p.image()).unwrap();
    assert_eq!(scan_count(), before + 3);

    std::fs::remove_dir_all(&dir).unwrap();
}
