//! The on-disk store: one root directory holding the fault-map cache, the
//! campaign journals, and named campaign results.
//!
//! Layout under the root:
//!
//! ```text
//! <root>/
//!   faultmaps/   content-addressed scanner output   (cache module)
//!   journals/    per-campaign crash-safe journals   (journal module)
//!   runs/        named CampaignResult JSON files    (save_run / load_run)
//! ```
//!
//! Everything in the store is plain JSON(L) so artifacts can be inspected,
//! diffed and shipped between machines — the paper's faultload files were
//! exactly this kind of portable artifact.

use std::path::{Path, PathBuf};

use depbench::{Campaign, CampaignResult, ConvergenceConfig};
use mvm::CodeImage;
use swfit_core::{Faultload, Scanner};

use crate::cache::FaultMapCache;
use crate::journal::{Journal, JournalHeader, StopRecord};
use crate::{io_err, StoreError};

/// A store rooted at one directory. Cheap to clone; all state is on disk.
#[derive(Clone, Debug)]
pub struct FaultStore {
    root: PathBuf,
    cache: FaultMapCache,
}

impl FaultStore {
    /// Opens (creating if needed) a store at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<FaultStore, StoreError> {
        let root = root.into();
        for sub in ["journals", "runs"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        let cache = FaultMapCache::open(root.join("faultmaps"))?;
        Ok(FaultStore { root, cache })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fault-map cache (for direct use).
    pub fn cache(&self) -> &FaultMapCache {
        &self.cache
    }

    /// Whole-image scan through the fault-map cache.
    ///
    /// # Errors
    ///
    /// See [`FaultMapCache::scan_image`].
    pub fn scan_image(
        &self,
        scanner: &Scanner,
        image: &CodeImage,
    ) -> Result<Faultload, StoreError> {
        self.cache.scan_image(scanner, image)
    }

    /// Function-filtered scan through the fault-map cache.
    ///
    /// # Errors
    ///
    /// See [`FaultMapCache::scan_functions`].
    pub fn scan_functions(
        &self,
        scanner: &Scanner,
        image: &CodeImage,
        funcs: &[String],
    ) -> Result<Faultload, StoreError> {
        self.cache.scan_functions(scanner, image, funcs)
    }

    /// Runs `campaign` over `faultload` with a crash-safe journal.
    ///
    /// With `resume = false` any previous journal for this campaign is
    /// discarded and the campaign starts from slot 0. With `resume = true`
    /// an existing journal is validated and its completed slots are
    /// replayed: only the remaining slots execute, and because every slot's
    /// randomness derives from `(seed, iteration, slot)`, the assembled
    /// [`CampaignResult`] is byte-identical to an uninterrupted run. A
    /// journal left by a *completed* campaign resumes to an immediate
    /// replay of the full result, executing nothing.
    ///
    /// Every completed slot is fsynced to the journal before the campaign
    /// proceeds, so a crash (including SIGKILL) at any point loses at most
    /// the in-flight slots. A journal *write* failure mid-campaign does not
    /// abort the run; the slot is simply not durable and re-executes on
    /// resume (a warning is printed).
    ///
    /// # Errors
    ///
    /// * [`StoreError::MissingFingerprint`] — the faultload is
    ///   unfingerprinted, so a journal could never be validated against it;
    /// * [`StoreError::StaleJournal`] — `resume = true` but the existing
    ///   journal belongs to a different campaign/config/faultload;
    /// * [`StoreError::Campaign`] — the campaign itself failed;
    /// * [`StoreError::Io`] / [`StoreError::Json`] — journal I/O failure.
    pub fn run_resumable(
        &self,
        campaign: &Campaign,
        faultload: &Faultload,
        iteration: u64,
        resume: bool,
    ) -> Result<CampaignResult, StoreError> {
        if !faultload.is_fingerprinted() {
            return Err(StoreError::MissingFingerprint {
                target: faultload.target.clone(),
            });
        }
        let header = JournalHeader::describe(campaign, faultload, iteration);
        let path = self.journal_path(campaign, iteration);
        let (journal, completed) = if resume && path.exists() {
            Journal::open_resume(&path, &header)?
        } else {
            (Journal::create(&path, &header)?, Vec::new())
        };
        let result = campaign.run_injection_observed(
            faultload,
            iteration,
            completed,
            &|slot, slot_result| {
                if let Err(e) = journal.record(slot, slot_result) {
                    eprintln!("warning: journal append for slot {slot} failed ({e}); the slot will re-run on resume");
                }
            },
        )?;
        Ok(result)
    }

    /// The journal path for one `(edition, server, iteration)` campaign.
    pub fn journal_path(&self, campaign: &Campaign, iteration: u64) -> PathBuf {
        self.root.join("journals").join(format!(
            "{}-{}-it{}.jsonl",
            campaign.edition().name(),
            campaign.server().name(),
            iteration
        ))
    }

    /// The stop-record path for a campaign (one per `(edition, server)`
    /// pair — the stop decision spans all iterations).
    pub fn stop_path(&self, campaign: &Campaign) -> PathBuf {
        self.root.join("journals").join(format!(
            "{}-{}-stop.json",
            campaign.edition().name(),
            campaign.server().name()
        ))
    }

    /// Durably records a campaign's early-stop decision (tmp + fsync +
    /// rename): once this returns, the decision survives any crash and
    /// [`load_stop`](FaultStore::load_stop) will replay it on resume.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`] on write failure.
    pub fn record_stop(
        &self,
        campaign: &Campaign,
        faultload: &Faultload,
        conv: &ConvergenceConfig,
        stopped_at: u64,
        converged: bool,
    ) -> Result<StopRecord, StoreError> {
        let record = StopRecord::describe(campaign, faultload, conv, stopped_at, converged);
        let path = self.stop_path(campaign);
        let json =
            serde_json::to_string_pretty(&record).map_err(|e| StoreError::Json(e.to_string()))?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            use std::io::Write as _;
            let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(json.as_bytes())
                .map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(record)
    }

    /// Loads a durable stop decision for this campaign, if one exists,
    /// validating it against the campaign and convergence rule about to
    /// resume. `Ok(None)` when no decision was recorded (the campaign never
    /// got far enough to stop).
    ///
    /// # Errors
    ///
    /// * [`StoreError::StaleJournal`] — the record belongs to a different
    ///   campaign/config/faultload/rule, or claims an iteration count
    ///   outside `[1, max_iters]`;
    /// * [`StoreError::Json`] — the file does not parse;
    /// * [`StoreError::Io`] — filesystem failure other than absence.
    pub fn load_stop(
        &self,
        campaign: &Campaign,
        faultload: &Faultload,
        conv: &ConvergenceConfig,
    ) -> Result<Option<StopRecord>, StoreError> {
        let path = self.stop_path(campaign);
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        let record: StopRecord = serde_json::from_str(&json)
            .map_err(|e| StoreError::Json(format!("{}: {e}", path.display())))?;
        let expected = StopRecord::describe(campaign, faultload, conv, 0, false);
        record.validate_against(&expected)?;
        if record.stopped_at == 0 || record.stopped_at > conv.max_iters {
            return Err(StoreError::StaleJournal {
                reason: format!(
                    "stop record claims {} iteration(s), outside 1..={}",
                    record.stopped_at, conv.max_iters
                ),
            });
        }
        Ok(Some(record))
    }

    /// Removes any stop decision for this campaign — a fresh (non-resumed)
    /// run must not inherit a stale one. Absence is not an error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on a removal failure other than absence.
    pub fn clear_stop(&self, campaign: &Campaign) -> Result<(), StoreError> {
        let path = self.stop_path(campaign);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }

    /// Saves a campaign result under `name` (atomically: temp + rename).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadRunName`] for unstorable names, otherwise
    /// [`StoreError::Io`] / [`StoreError::Json`].
    pub fn save_run(&self, name: &str, result: &CampaignResult) -> Result<PathBuf, StoreError> {
        let path = self.run_path(name)?;
        let json =
            serde_json::to_string_pretty(result).map_err(|e| StoreError::Json(e.to_string()))?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, json).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(path)
    }

    /// Loads a previously saved campaign result.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingRun`] when no run with this name exists,
    /// [`StoreError::Json`] when the stored file does not parse.
    pub fn load_run(&self, name: &str) -> Result<CampaignResult, StoreError> {
        let path = self.run_path(name)?;
        let json = std::fs::read_to_string(&path).map_err(|_| StoreError::MissingRun {
            name: name.to_string(),
        })?;
        serde_json::from_str(&json)
            .map_err(|e| StoreError::Json(format!("{}: {e}", path.display())))
    }

    /// Names of all stored runs, sorted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the runs directory is unreadable.
    pub fn list_runs(&self) -> Result<Vec<String>, StoreError> {
        let dir = self.root.join("runs");
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(|e| io_err(&dir, e))? {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let file = entry.file_name();
            if let Some(name) = file.to_str().and_then(|f| f.strip_suffix(".json")) {
                names.push(name.to_string());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// The file path a run name maps to, after validating the name.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadRunName`] unless the name is non-empty and uses
    /// only `[A-Za-z0-9._-]` (no path separators, no traversal).
    pub fn run_path(&self, name: &str) -> Result<PathBuf, StoreError> {
        let ok = !name.is_empty()
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if !ok {
            return Err(StoreError::BadRunName {
                name: name.to_string(),
            });
        }
        Ok(self.root.join("runs").join(format!("{name}.json")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depbench::{CampaignConfig, IntervalConfig};
    use simkit::SimDuration;
    use simos::{Edition, Os};
    use webserver::ServerKind;

    fn quick_config() -> CampaignConfig {
        CampaignConfig::builder()
            .interval(IntervalConfig {
                duration: SimDuration::from_millis(300),
                ..IntervalConfig::default()
            })
            .os_budget(150_000)
            .build()
    }

    fn small_faultload(n: usize) -> Faultload {
        let os = Os::boot(Edition::Nimbus2000).unwrap();
        let api: Vec<String> = simos::OsApi::ALL
            .iter()
            .map(|f| f.symbol().to_string())
            .collect();
        let mut fl = Scanner::standard().scan_functions(os.program().image(), &api);
        let stride = (fl.len() / n).max(1);
        fl.faults = fl.faults.into_iter().step_by(stride).take(n).collect();
        fl
    }

    fn tmp_store(tag: &str) -> (PathBuf, FaultStore) {
        let dir =
            std::env::temp_dir().join(format!("faultstore-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FaultStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn save_load_roundtrip_and_listing() {
        let (dir, store) = tmp_store("roundtrip");
        let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        let fl = small_faultload(3);
        let result = store.run_resumable(&campaign, &fl, 0, false).unwrap();
        store.save_run("baseline", &result).unwrap();
        let loaded = store.load_run("baseline").unwrap();
        assert_eq!(
            serde_json::to_string(&result).unwrap(),
            serde_json::to_string(&loaded).unwrap()
        );
        assert_eq!(store.list_runs().unwrap(), vec!["baseline".to_string()]);
        assert!(matches!(
            store.load_run("never-stored"),
            Err(StoreError::MissingRun { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_run_names_are_rejected() {
        let (dir, store) = tmp_store("names");
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte", "sp ace"] {
            assert!(
                matches!(store.run_path(bad), Err(StoreError::BadRunName { .. })),
                "name {bad:?} must be rejected"
            );
        }
        assert!(store.run_path("ok-1.2_x").is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_from_truncated_journal_is_byte_identical() {
        let (dir, store) = tmp_store("resume");
        let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        let fl = small_faultload(6);
        let full = store.run_resumable(&campaign, &fl, 0, false).unwrap();
        let full_json = serde_json::to_string(&full).unwrap();

        let path = store.journal_path(&campaign, 0);
        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert_eq!(lines.len(), 1 + 6, "header plus one record per slot");

        // Simulate a crash after 2 slots, with a torn third record.
        let torn = format!(
            "{}\n{}\n{}\n{{\"slot\":2,\"resu",
            lines[0], lines[1], lines[2]
        );
        std::fs::write(&path, torn).unwrap();
        let resumed = store.run_resumable(&campaign, &fl, 0, true).unwrap();
        assert_eq!(full_json, serde_json::to_string(&resumed).unwrap());

        // A journal of a completed campaign replays without executing.
        let replayed = store.run_resumable(&campaign, &fl, 0, true).unwrap();
        assert_eq!(full_json, serde_json::to_string(&replayed).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_slot_is_journaled_and_resume_reruns_only_it() {
        let (dir, store) = tmp_store("quarantine");
        let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        let fl = small_faultload(5);
        let clean = store.run_resumable(&campaign, &fl, 0, false).unwrap();
        let clean_json = serde_json::to_string(&clean).unwrap();

        // Re-run with a harness that panics on slot 2's fault: the campaign
        // must complete, with the slot quarantined (in the result and in the
        // journal).
        let mut poisoned = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        poisoned.panic_on_fault(&fl.faults[2].id);
        let partial = store.run_resumable(&poisoned, &fl, 0, false).unwrap();
        assert_eq!(partial.slots.len(), 4);
        assert_eq!(partial.quarantined.len(), 1);
        assert_eq!(partial.quarantined[0].slot, 2);
        let journal_raw = std::fs::read_to_string(store.journal_path(&campaign, 0)).unwrap();
        assert!(
            journal_raw.contains("\"quarantined\""),
            "journal records the quarantine:\n{journal_raw}"
        );

        // Resume with a healthy harness: only the quarantined slot re-runs,
        // and the assembled result is byte-identical to the clean run.
        let resumed = store.run_resumable(&campaign, &fl, 0, true).unwrap();
        assert_eq!(clean_json, serde_json::to_string(&resumed).unwrap());
        // The journal now replays completely: a further resume executes
        // nothing and still matches.
        let replayed = store.run_resumable(&campaign, &fl, 0, true).unwrap();
        assert_eq!(clean_json, serde_json::to_string(&replayed).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_journals_are_refused() {
        let (dir, store) = tmp_store("stale");
        let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        let fl = small_faultload(3);
        store.run_resumable(&campaign, &fl, 0, false).unwrap();

        // Same campaign identity, different seed: the journal's slot results
        // were measured under other randomness and must not be spliced in.
        let reseeded = Campaign::new(
            Edition::Nimbus2000,
            ServerKind::Wren,
            CampaignConfig::builder()
                .interval(IntervalConfig {
                    duration: SimDuration::from_millis(300),
                    ..IntervalConfig::default()
                })
                .os_budget(150_000)
                .seed(999)
                .build(),
        );
        let err = store.run_resumable(&reseeded, &fl, 0, true).unwrap_err();
        assert!(
            matches!(&err, StoreError::StaleJournal { reason } if reason.contains("config hash")),
            "got {err}"
        );

        // A different faultload (other fault count) is also stale.
        let other_fl = small_faultload(2);
        let err = store
            .run_resumable(&campaign, &other_fl, 0, true)
            .unwrap_err();
        assert!(matches!(err, StoreError::StaleJournal { .. }), "got {err}");

        // But parallelism is excluded from the config hash: a campaign
        // journaled at -j1 resumes fine at -j4.
        let wide = Campaign::new(
            Edition::Nimbus2000,
            ServerKind::Wren,
            CampaignConfig::builder()
                .interval(IntervalConfig {
                    duration: SimDuration::from_millis(300),
                    ..IntervalConfig::default()
                })
                .os_budget(150_000)
                .parallelism(4)
                .build(),
        );
        assert!(store.run_resumable(&wide, &fl, 0, true).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stop_record_roundtrips_and_validates() {
        let (dir, store) = tmp_store("stop");
        let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        let fl = small_faultload(3);
        let conv = ConvergenceConfig {
            target_halfwidth_pct: 5.0,
            min_iters: 2,
            max_iters: 8,
        };

        // Nothing recorded yet.
        assert!(store.load_stop(&campaign, &fl, &conv).unwrap().is_none());

        let recorded = store.record_stop(&campaign, &fl, &conv, 3, true).unwrap();
        let loaded = store.load_stop(&campaign, &fl, &conv).unwrap().unwrap();
        assert_eq!(recorded, loaded);
        assert_eq!(loaded.stopped_at, 3);
        assert!(loaded.converged);

        // A different convergence rule must refuse to replay the decision.
        let tighter = ConvergenceConfig {
            target_halfwidth_pct: 1.0,
            ..conv
        };
        let err = store.load_stop(&campaign, &fl, &tighter).unwrap_err();
        assert!(
            matches!(&err, StoreError::StaleJournal { reason } if reason.contains("convergence")),
            "got {err}"
        );

        // So must a reconfigured campaign.
        let reseeded = Campaign::new(
            Edition::Nimbus2000,
            ServerKind::Wren,
            CampaignConfig::builder()
                .interval(IntervalConfig {
                    duration: SimDuration::from_millis(300),
                    ..IntervalConfig::default()
                })
                .os_budget(150_000)
                .seed(999)
                .build(),
        );
        let err = store.load_stop(&reseeded, &fl, &conv).unwrap_err();
        assert!(matches!(err, StoreError::StaleJournal { .. }), "got {err}");

        // A decision claiming more iterations than the rule allows is
        // stale too (e.g. a file tampered with or written by a buggy
        // build).
        store.record_stop(&campaign, &fl, &conv, 9, false).unwrap();
        let err = store.load_stop(&campaign, &fl, &conv).unwrap_err();
        assert!(
            matches!(&err, StoreError::StaleJournal { reason } if reason.contains("iteration")),
            "got {err}"
        );

        // clear_stop removes it; clearing again is not an error.
        store.clear_stop(&campaign).unwrap();
        assert!(store.load_stop(&campaign, &fl, &conv).unwrap().is_none());
        store.clear_stop(&campaign).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unfingerprinted_faultloads_cannot_be_journaled() {
        let (dir, store) = tmp_store("nofp");
        let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, quick_config());
        let mut fl = small_faultload(2);
        fl.fingerprint = None;
        let err = store.run_resumable(&campaign, &fl, 0, false).unwrap_err();
        assert!(
            matches!(err, StoreError::MissingFingerprint { .. }),
            "got {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
