//! The content-addressed fault-map cache: step-1 scanner output persisted
//! to disk, so an unchanged OS edition is never scanned twice.
//!
//! The cache key is the triple the scan result is a pure function of:
//!
//! * **image fingerprint** — which build of the target the map describes
//!   ([`mvm::CodeImage::fingerprint`]);
//! * **operator-set hash** — which mutation operators ran, in which order
//!   ([`Scanner::operator_set_hash`]);
//! * **function-filter hash** — which function subset was scanned (`None`
//!   for a whole-image scan; the §2.4 fine-tuned FIT subset otherwise).
//!   The filter is hashed as a sorted set because the scan walks the image
//!   in image order, so filter order cannot affect the result.
//!
//! A stored map whose embedded fingerprint does not match the key being
//! looked up is treated as a miss and rewritten — corruption or hand-edits
//! can degrade performance but never inject a wrong map.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mvm::CodeImage;
use swfit_core::{Faultload, Scanner};

use crate::{io_err, StoreError};

/// Number of *actual* scanner walks this process performed through a
/// [`FaultMapCache`] — cache hits do not count.
static SCANS: AtomicU64 = AtomicU64::new(0);

/// How many cache lookups fell through to a real scan in this process.
/// Mirrors [`simos::compile_count`]: lets tests assert that a second scan of
/// an unchanged edition was served from the cache.
pub fn scan_count() -> u64 {
    SCANS.load(Ordering::Relaxed)
}

/// The content-address of one fault map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Fingerprint of the scanned code image.
    pub image_fingerprint: u64,
    /// Hash of the scanner's operator library (content and order).
    pub operator_set: u64,
    /// Hash of the sorted function filter; `0` for a whole-image scan.
    pub function_filter: u64,
}

impl CacheKey {
    /// Computes the key for scanning `image` with `scanner`, restricted to
    /// `funcs` (or the whole image when `None`).
    pub fn new(image: &CodeImage, scanner: &Scanner, funcs: Option<&[String]>) -> CacheKey {
        CacheKey {
            image_fingerprint: image.fingerprint(),
            operator_set: scanner.operator_set_hash(),
            function_filter: funcs.map_or(0, |fs| {
                let mut sorted: Vec<&str> = fs.iter().map(String::as_str).collect();
                sorted.sort_unstable();
                sorted.dedup();
                simkit::hash::fnv1a_strs(&sorted)
            }),
        }
    }

    /// The file name this key addresses.
    pub fn file_name(&self) -> String {
        format!(
            "map-{:016x}-{:016x}-{:016x}.json",
            self.image_fingerprint, self.operator_set, self.function_filter
        )
    }
}

/// An on-disk fault-map cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct FaultMapCache {
    dir: PathBuf,
}

impl FaultMapCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FaultMapCache, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(FaultMapCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// [`Scanner::scan_image`] through the cache.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`] on unreadable cache state.
    pub fn scan_image(
        &self,
        scanner: &Scanner,
        image: &CodeImage,
    ) -> Result<Faultload, StoreError> {
        self.scan(scanner, image, None)
    }

    /// [`Scanner::scan_functions`] through the cache.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`] on unreadable cache state.
    pub fn scan_functions(
        &self,
        scanner: &Scanner,
        image: &CodeImage,
        funcs: &[String],
    ) -> Result<Faultload, StoreError> {
        self.scan(scanner, image, Some(funcs))
    }

    fn scan(
        &self,
        scanner: &Scanner,
        image: &CodeImage,
        funcs: Option<&[String]>,
    ) -> Result<Faultload, StoreError> {
        let key = CacheKey::new(image, scanner, funcs);
        let path = self.dir.join(key.file_name());
        if let Some(hit) = self.load_valid(&path, &key) {
            return Ok(hit);
        }
        SCANS.fetch_add(1, Ordering::Relaxed);
        let faultload = match funcs {
            Some(fs) => scanner.scan_functions(image, fs),
            None => scanner.scan_image(image),
        };
        if !faultload.is_fingerprinted() {
            // The scanner always stamps; reaching this means a scanner bug.
            // Refuse to cache rather than store an unvalidatable artifact.
            return Err(StoreError::MissingFingerprint {
                target: faultload.target.clone(),
            });
        }
        self.write_atomic(&path, &faultload)?;
        Ok(faultload)
    }

    /// Loads a cached map if it exists, parses and carries the fingerprint
    /// the key demands. Any failure is a miss, never an error: the cache
    /// self-heals by rescanning and rewriting.
    ///
    /// A fingerprint mismatch on an otherwise healthy entry is the one
    /// self-healing case worth a warning: the entry re-scans on *every*
    /// lookup (the rewrite lands under the same file name and mismatches
    /// again next time), and silently churning cache is indistinguishable
    /// from a working one. The warning carries both fingerprints so the
    /// stale build is identifiable.
    fn load_valid(&self, path: &Path, key: &CacheKey) -> Option<Faultload> {
        let json = std::fs::read_to_string(path).ok()?;
        let faultload = Faultload::from_json(&json).ok()?;
        if faultload.fingerprint != Some(key.image_fingerprint) {
            eprintln!(
                "warning: fault-map cache entry {} was generated from a different build \
                 (cached fingerprint {}, booted image fingerprint {:#018x}); re-scanning",
                path.display(),
                match faultload.fingerprint {
                    Some(fp) => format!("{fp:#018x}"),
                    None => "absent".to_string(),
                },
                key.image_fingerprint,
            );
            return None;
        }
        Some(faultload)
    }

    /// Write-to-temp-then-rename, so a concurrent reader (or a crash) never
    /// observes a half-written map.
    fn write_atomic(&self, path: &Path, faultload: &Faultload) -> Result<(), StoreError> {
        let json = faultload
            .to_json()
            .map_err(|e| StoreError::Json(e.to_string()))?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, json).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::compile;

    const SRC: &str = r#"
        fn helper(x) { return x * 2; }
        fn alpha(a, b) {
            var r = 0;
            if (a > 0 && b > 0) { r = a + b; }
            helper(r);
            return r;
        }
    "#;

    const OTHER_SRC: &str = r#"
        fn gamma(a) {
            var x = 1;
            if (a > 3) { x = a; }
            return x;
        }
    "#;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("faultstore-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_scan_is_a_cache_hit() {
        let dir = tmpdir("hit");
        let cache = FaultMapCache::open(&dir).unwrap();
        let p = compile("os", SRC).unwrap();
        let before = scan_count();
        let a = cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        assert_eq!(scan_count(), before + 1, "first scan is a miss");
        let b = cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        assert_eq!(scan_count(), before + 1, "second scan served from cache");
        assert_eq!(a, b);
        assert_eq!(a, Scanner::standard().scan_image(p.image()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn operator_set_change_is_a_miss() {
        use swfit_core::operators::MifsOp;
        let dir = tmpdir("ops");
        let cache = FaultMapCache::open(&dir).unwrap();
        let p = compile("os", SRC).unwrap();
        let before = scan_count();
        cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        let single = Scanner::with_operators(vec![Box::new(MifsOp)]).unwrap();
        let narrowed = cache.scan_image(&single, p.image()).unwrap();
        assert_eq!(
            scan_count(),
            before + 2,
            "different operator library must rescan"
        );
        assert!(narrowed.len() < Scanner::standard().scan_image(p.image()).len());
        // And each library now hits its own entry.
        cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        cache.scan_image(&single, p.image()).unwrap();
        assert_eq!(scan_count(), before + 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn image_change_and_filter_change_are_misses() {
        let dir = tmpdir("img");
        let cache = FaultMapCache::open(&dir).unwrap();
        let p1 = compile("os", SRC).unwrap();
        let p2 = compile("os", OTHER_SRC).unwrap();
        let before = scan_count();
        cache.scan_image(&Scanner::standard(), p1.image()).unwrap();
        cache.scan_image(&Scanner::standard(), p2.image()).unwrap();
        assert_eq!(scan_count(), before + 2, "different image must rescan");
        let filter = vec!["alpha".to_string()];
        let restricted = cache
            .scan_functions(&Scanner::standard(), p1.image(), &filter)
            .unwrap();
        assert_eq!(scan_count(), before + 3, "filtered scan is its own entry");
        assert!(restricted.faults.iter().all(|f| f.func == "alpha"));
        // Filter order does not matter: sorted-set hashing.
        let shuffled = vec!["alpha".to_string(), "alpha".to_string()];
        cache
            .scan_functions(&Scanner::standard(), p1.image(), &shuffled)
            .unwrap();
        assert_eq!(scan_count(), before + 3, "same filter set hits");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_cache_entry_self_heals() {
        let dir = tmpdir("corrupt");
        let cache = FaultMapCache::open(&dir).unwrap();
        let p = compile("os", SRC).unwrap();
        let key = CacheKey::new(p.image(), &Scanner::standard(), None);
        let before = scan_count();
        let clean = cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        std::fs::write(dir.join(key.file_name()), b"{ not json").unwrap();
        let healed = cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        assert_eq!(scan_count(), before + 2, "corrupt entry forces a rescan");
        assert_eq!(clean, healed);
        // The rewrite is valid again.
        cache.scan_image(&Scanner::standard(), p.image()).unwrap();
        assert_eq!(scan_count(), before + 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
