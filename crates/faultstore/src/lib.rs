//! `faultstore` — the persistence layer that turns the injector into a
//! benchmark *platform*: durable faultloads, crash-safe campaigns,
//! comparable runs.
//!
//! G-SWFIT's defining engineering split is step 1 (the expensive scan that
//! builds the mutation map) versus step 2 (the cheap apply/undo of a
//! pre-computed mutation). This crate makes the split durable across
//! processes, the way the paper's tooling shipped faultload files between
//! testbeds:
//!
//! * [`cache`] — a **content-addressed fault-map cache**: step-1
//!   [`swfit_core::Scanner`] output persisted to disk keyed by
//!   `(image fingerprint, operator-set hash, function-filter hash)`, so a
//!   rescan of an unchanged OS edition is a file read, not a code walk.
//!   [`scan_count`] mirrors [`simos::compile_count`] as the test hook
//!   proving cache hits.
//! * [`journal`] — a **crash-safe, append-only campaign journal** (JSONL,
//!   write-then-fsync, one record per completed slot, written in slot order
//!   via the executor's ordered observer). Re-running an interrupted
//!   campaign replays the journaled prefix and executes only the remainder;
//!   because every slot's randomness derives from `(seed, iteration, slot)`,
//!   the resumed [`depbench::CampaignResult`] is byte-identical to an
//!   uninterrupted run. Header validation (schema, edition, server, config
//!   hash, faultload fingerprint) refuses stale journals.
//! * [`store`] — the on-disk layout gluing both together plus named,
//!   reloadable campaign results ([`FaultStore::save_run`] /
//!   [`FaultStore::load_run`]).
//! * [`diff`] — **cross-run diffing**: load two stored results and render a
//!   delta table over the paper's metrics (SPC/THR/RTM/ER%, MIS/KNS/KCP,
//!   ADMf).
//!
//! # Example
//!
//! ```no_run
//! use depbench::{Campaign, CampaignConfig};
//! use faultstore::FaultStore;
//! use simos::{Edition, Os};
//! use swfit_core::Scanner;
//! use webserver::ServerKind;
//!
//! let store = FaultStore::open("bench-store")?;
//! let os = Os::boot(Edition::Nimbus2000)?;
//! // Second process to run this line gets a cache hit instead of a scan.
//! let faultload = store.scan_image(&Scanner::standard(), os.program().image())?;
//! let campaign = Campaign::new(Edition::Nimbus2000, ServerKind::Wren, CampaignConfig::default());
//! // Survives SIGKILL: re-running with `resume = true` picks up mid-campaign.
//! let result = store.run_resumable(&campaign, &faultload, 0, true)?;
//! store.save_run("baseline-run", &result)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod diff;
pub mod journal;
pub mod store;

use std::fmt;

pub use cache::{scan_count, CacheKey, FaultMapCache};
pub use diff::{diff_runs, diff_table};
pub use journal::{Journal, JournalHeader, StopRecord, JOURNAL_SCHEMA};
pub use store::FaultStore;

/// Why a store operation could not complete.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (path included in the message).
    Io(String),
    /// An artifact on disk does not parse.
    Json(String),
    /// The faultload carries no fingerprint, so the store cannot key or
    /// validate it (see `Faultload::is_fingerprinted`).
    MissingFingerprint {
        /// The faultload's declared target.
        target: String,
    },
    /// A journal exists but was written by a different campaign (schema,
    /// edition, server, config or faultload mismatch) — resuming it would
    /// splice foreign slot results into this run.
    StaleJournal {
        /// Which header field disagreed, with both values.
        reason: String,
    },
    /// No stored run with this name.
    MissingRun {
        /// The requested run name.
        name: String,
    },
    /// A run name contains characters unsafe for a file name.
    BadRunName {
        /// The offending name.
        name: String,
    },
    /// The underlying campaign failed.
    Campaign(depbench::CampaignError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
            StoreError::Json(m) => write!(f, "store artifact does not parse: {m}"),
            StoreError::MissingFingerprint { target } => write!(
                f,
                "faultload `{target}` carries no fingerprint; the store refuses to \
                 cache artifacts it cannot validate — re-generate with `faultbench scan`"
            ),
            StoreError::StaleJournal { reason } => {
                write!(f, "stale campaign journal refused: {reason}")
            }
            StoreError::MissingRun { name } => write!(f, "no stored run named `{name}`"),
            StoreError::BadRunName { name } => write!(
                f,
                "run name `{name}` is not storable; use letters, digits, `.`, `_`, `-`"
            ),
            StoreError::Campaign(e) => write!(f, "campaign failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<depbench::CampaignError> for StoreError {
    fn from(e: depbench::CampaignError) -> StoreError {
        StoreError::Campaign(e)
    }
}

/// Annotates an I/O error with the path it happened on.
pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{}: {e}", path.display()))
}
