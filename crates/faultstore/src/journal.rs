//! The crash-safe campaign journal: append-only JSONL, one record per
//! completed slot, fsynced before the campaign moves on.
//!
//! # Format
//!
//! Line 1 is the [`JournalHeader`] — everything needed to recognize "the
//! same campaign": schema version, edition, server, iteration, a stable
//! hash of the result-affecting config
//! ([`depbench::CampaignConfig::stable_hash`]), the faultload's image
//! fingerprint and its fault count. Every following line is one
//! `SlotRecord` — `{"slot": i, "result": {…}}` for a completed slot, or
//! `{"slot": i, "quarantined": {…}}` for one whose harness panicked — written
//! strictly in slot order (the executor's ordered observer guarantees a
//! gap-free prefix even under parallel work-stealing). One exception to
//! append-only ordering: a *resumed* campaign re-attempts quarantined slots,
//! and the re-attempt's record is appended out of order, superseding the
//! quarantine line it replaces (last record for a slot wins on replay).
//!
//! # Crash safety
//!
//! Each record is written and `fsync`ed (`File::sync_data`) before
//! [`Journal::record`] returns, so a record is either durably complete or
//! absent. A SIGKILL mid-write leaves at most one torn trailing line;
//! [`Journal::open_resume`] stops at the first unparsable or non-contiguous
//! record, truncates the file back to the last durable record, and resumes
//! from there — the torn tail is re-executed, never trusted.
//!
//! # Staleness
//!
//! Resume validates every header field against the campaign about to run.
//! Any disagreement is a [`StoreError::StaleJournal`] naming the field:
//! silently splicing slot results measured under a different config or OS
//! build into a campaign would fabricate benchmark numbers.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use depbench::{Campaign, ConvergenceConfig, SlotError, SlotOutcome, SlotResult};
use serde::{Deserialize, Serialize};
use swfit_core::Faultload;

use crate::{io_err, StoreError};

/// Journal schema version; bumped on any incompatible format change.
pub const JOURNAL_SCHEMA: u32 = 1;

/// First line of a journal: identifies the campaign the slot records belong
/// to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_SCHEMA`]).
    pub schema: u32,
    /// OS edition name (string form, stable across enum refactors).
    pub edition: String,
    /// Server name.
    pub server: String,
    /// Campaign iteration the journal covers.
    pub iteration: u64,
    /// [`depbench::CampaignConfig::stable_hash`] of the campaign config.
    pub config_hash: u64,
    /// The faultload's image fingerprint (`None` only for legacy artifacts,
    /// which the store refuses to journal).
    pub faultload_fingerprint: Option<u64>,
    /// Hash of the fault ids, in slot order — distinguishes different
    /// same-size subsets of the same image (e.g. two ablation faultloads).
    pub faultload_hash: u64,
    /// Number of faults (= slots) in the campaign.
    pub fault_count: usize,
}

impl JournalHeader {
    /// The header describing `campaign` running `faultload` at `iteration`.
    pub fn describe(campaign: &Campaign, faultload: &Faultload, iteration: u64) -> JournalHeader {
        JournalHeader {
            schema: JOURNAL_SCHEMA,
            edition: campaign.edition().name().to_string(),
            server: campaign.server().name().to_string(),
            iteration,
            config_hash: campaign.config().stable_hash(),
            faultload_fingerprint: faultload.fingerprint,
            faultload_hash: {
                let ids: Vec<&str> = faultload.faults.iter().map(|f| f.id.as_str()).collect();
                simkit::hash::fnv1a_strs(&ids)
            },
            fault_count: faultload.len(),
        }
    }

    /// Field-by-field comparison with a precise mismatch description.
    fn validate_against(&self, expected: &JournalHeader) -> Result<(), StoreError> {
        let mismatch = |field: &str, found: &dyn std::fmt::Debug, want: &dyn std::fmt::Debug| {
            Err(StoreError::StaleJournal {
                reason: format!("{field} is {found:?}, campaign expects {want:?}"),
            })
        };
        if self.schema != expected.schema {
            return mismatch("schema", &self.schema, &expected.schema);
        }
        if self.edition != expected.edition {
            return mismatch("edition", &self.edition, &expected.edition);
        }
        if self.server != expected.server {
            return mismatch("server", &self.server, &expected.server);
        }
        if self.iteration != expected.iteration {
            return mismatch("iteration", &self.iteration, &expected.iteration);
        }
        if self.config_hash != expected.config_hash {
            return mismatch("config hash", &self.config_hash, &expected.config_hash);
        }
        if self.faultload_fingerprint != expected.faultload_fingerprint {
            return mismatch(
                "faultload fingerprint",
                &self.faultload_fingerprint,
                &expected.faultload_fingerprint,
            );
        }
        if self.faultload_hash != expected.faultload_hash {
            return mismatch(
                "faultload content",
                &self.faultload_hash,
                &expected.faultload_hash,
            );
        }
        if self.fault_count != expected.fault_count {
            return mismatch("fault count", &self.fault_count, &expected.fault_count);
        }
        Ok(())
    }
}

/// The durable record of a campaign's early-stop decision: which iteration
/// the convergence rule (or the iteration cap) stopped the campaign at.
///
/// Written once, atomically (tmp + fsync + rename), the moment the decision
/// is taken — *before* the final summary is printed or saved. A resumed
/// campaign replays the decision instead of re-deriving it, so a crash
/// between "decided to stop" and "finished reporting" cannot change how
/// many iterations the campaign claims to have run: the stop file is the
/// decision, byte for byte.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StopRecord {
    /// Format version ([`JOURNAL_SCHEMA`]).
    pub schema: u32,
    /// OS edition name.
    pub edition: String,
    /// Server name.
    pub server: String,
    /// [`depbench::CampaignConfig::stable_hash`] of the campaign config.
    pub config_hash: u64,
    /// The faultload's image fingerprint.
    pub faultload_fingerprint: Option<u64>,
    /// Hash of the fault ids, in slot order.
    pub faultload_hash: u64,
    /// The convergence rule in force when the decision was taken.
    pub convergence: ConvergenceConfig,
    /// Iterations the campaign ran (the stop decision: iterations
    /// `0..stopped_at` are final).
    pub stopped_at: u64,
    /// `true` when the CI half-width targets were met; `false` when the
    /// campaign stopped because it hit `convergence.max_iters` instead.
    pub converged: bool,
}

impl StopRecord {
    /// The record describing `campaign` under `conv` stopping after
    /// `stopped_at` iterations.
    pub fn describe(
        campaign: &Campaign,
        faultload: &Faultload,
        conv: &ConvergenceConfig,
        stopped_at: u64,
        converged: bool,
    ) -> StopRecord {
        let header = JournalHeader::describe(campaign, faultload, 0);
        StopRecord {
            schema: JOURNAL_SCHEMA,
            edition: header.edition,
            server: header.server,
            config_hash: header.config_hash,
            faultload_fingerprint: header.faultload_fingerprint,
            faultload_hash: header.faultload_hash,
            convergence: *conv,
            stopped_at,
            converged,
        }
    }

    /// Validates that this record belongs to the campaign and convergence
    /// rule about to resume — everything except the decision itself
    /// (`stopped_at` / `converged`) must agree.
    ///
    /// # Errors
    ///
    /// [`StoreError::StaleJournal`] naming the mismatched field: replaying a
    /// stop decision taken under a different config or target would freeze
    /// the wrong iteration count into the results.
    pub fn validate_against(&self, expected: &StopRecord) -> Result<(), StoreError> {
        let mismatch = |field: &str, found: &dyn std::fmt::Debug, want: &dyn std::fmt::Debug| {
            Err(StoreError::StaleJournal {
                reason: format!("stop record {field} is {found:?}, campaign expects {want:?}"),
            })
        };
        if self.schema != expected.schema {
            return mismatch("schema", &self.schema, &expected.schema);
        }
        if self.edition != expected.edition {
            return mismatch("edition", &self.edition, &expected.edition);
        }
        if self.server != expected.server {
            return mismatch("server", &self.server, &expected.server);
        }
        if self.config_hash != expected.config_hash {
            return mismatch("config hash", &self.config_hash, &expected.config_hash);
        }
        if self.faultload_fingerprint != expected.faultload_fingerprint {
            return mismatch(
                "faultload fingerprint",
                &self.faultload_fingerprint,
                &expected.faultload_fingerprint,
            );
        }
        if self.faultload_hash != expected.faultload_hash {
            return mismatch(
                "faultload content",
                &self.faultload_hash,
                &expected.faultload_hash,
            );
        }
        if self.convergence != expected.convergence {
            return mismatch("convergence rule", &self.convergence, &expected.convergence);
        }
        Ok(())
    }
}

/// One journal line after the header. Exactly one of `result` and
/// `quarantined` is set; completed-slot records serialize byte-identically
/// to the pre-quarantine format (`{"slot": i, "result": {…}}`), so journals
/// written before quarantine existed replay unchanged.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SlotRecord {
    /// Slot index (= fault index in the faultload).
    slot: usize,
    /// The completed slot's result.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    result: Option<SlotResult>,
    /// Why the slot was quarantined instead.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    quarantined: Option<SlotError>,
}

impl SlotRecord {
    fn describe(slot: usize, outcome: &SlotOutcome) -> SlotRecord {
        match outcome {
            SlotOutcome::Done(r) => SlotRecord {
                slot,
                result: Some(r.clone()),
                quarantined: None,
            },
            SlotOutcome::Quarantined(e) => SlotRecord {
                slot,
                result: None,
                quarantined: Some(e.clone()),
            },
        }
    }

    fn outcome(self) -> Option<SlotOutcome> {
        match (self.result, self.quarantined) {
            (Some(r), None) => Some(SlotOutcome::Done(r)),
            (None, Some(e)) => Some(SlotOutcome::Quarantined(e)),
            // Neither or both: a record this journal never writes.
            _ => None,
        }
    }
}

/// What the journal durably knows about one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// No record yet.
    Missing,
    /// A completed result is on disk — final, never overwritten.
    Done,
    /// A quarantine record is on disk; a re-attempt may supersede it.
    Quarantined,
}

struct JournalInner {
    file: File,
    /// Per-slot record state, sized to the campaign's fault count. A record
    /// is accepted only for the first [`SlotState::Missing`] slot (the
    /// gap-free prefix rule) or to supersede a [`SlotState::Quarantined`]
    /// slot on resume; anything else is dropped — it could only follow a
    /// failed slot, and the campaign aborts on failure anyway.
    state: Vec<SlotState>,
}

/// An open campaign journal, safe to record into from the executor's
/// observer (which serializes calls, but the journal takes its own lock so
/// misuse cannot corrupt the file).
pub struct Journal {
    path: PathBuf,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Creates (truncating any previous file) a journal for a fresh
    /// campaign and durably writes its header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`] on write failure.
    pub fn create(path: impl Into<PathBuf>, header: &JournalHeader) -> Result<Journal, StoreError> {
        let path = path.into();
        let mut file = File::create(&path).map_err(|e| io_err(&path, e))?;
        let line = serde_json::to_string(header).map_err(|e| StoreError::Json(e.to_string()))?;
        writeln!(file, "{line}").map_err(|e| io_err(&path, e))?;
        file.sync_data().map_err(|e| io_err(&path, e))?;
        Ok(Journal {
            path,
            inner: Mutex::new(JournalInner {
                file,
                state: vec![SlotState::Missing; header.fault_count],
            }),
        })
    }

    /// Opens an existing journal for resumption: validates its header
    /// against `expected`, replays the durable prefix of slot records
    /// (later records supersede the quarantine lines they re-attempt),
    /// truncates any torn tail, and returns the journal positioned to
    /// append after the last durable record.
    ///
    /// # Errors
    ///
    /// * [`StoreError::StaleJournal`] — header disagrees with `expected`;
    /// * [`StoreError::Json`] — the header line itself does not parse (a
    ///   journal torn *at the header* cannot identify its campaign);
    /// * [`StoreError::Io`] — filesystem failure.
    pub fn open_resume(
        path: impl Into<PathBuf>,
        expected: &JournalHeader,
    ) -> Result<(Journal, Vec<SlotOutcome>), StoreError> {
        let path = path.into();
        let raw = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let header_end = raw.find('\n').ok_or_else(|| {
            StoreError::Json(format!(
                "{}: journal has no complete header line",
                path.display()
            ))
        })?;
        let header: JournalHeader = serde_json::from_str(&raw[..header_end])
            .map_err(|e| StoreError::Json(format!("{}: bad header: {e}", path.display())))?;
        header.validate_against(expected)?;

        let mut outcomes: Vec<SlotOutcome> = Vec::new();
        // Byte offset of the end of the last durable, acceptable record.
        let mut durable_end = header_end + 1;
        let mut cursor = durable_end;
        while cursor < raw.len() {
            let line_end = match raw[cursor..].find('\n') {
                Some(n) => cursor + n,
                None => break, // torn trailing line: no newline made it to disk
            };
            let Ok(record) = serde_json::from_str::<SlotRecord>(&raw[cursor..line_end]) else {
                break; // torn or corrupt: everything after is untrusted
            };
            if record.slot >= header.fault_count {
                break; // out of range: cannot belong to this campaign
            }
            let slot = record.slot;
            let Some(outcome) = record.outcome() else {
                break; // malformed record (neither result nor quarantine)
            };
            if slot == outcomes.len() {
                outcomes.push(outcome);
            } else if slot < outcomes.len() && matches!(outcomes[slot], SlotOutcome::Quarantined(_))
            {
                // A resumed run's re-attempt of a quarantined slot.
                outcomes[slot] = outcome;
            } else {
                break; // gap: the remainder cannot be a replayable prefix
            }
            durable_end = line_end + 1;
            cursor = durable_end;
        }

        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.set_len(durable_end as u64)
            .map_err(|e| io_err(&path, e))?;
        let mut state = vec![SlotState::Missing; header.fault_count];
        for (slot, outcome) in outcomes.iter().enumerate() {
            state[slot] = match outcome {
                SlotOutcome::Done(_) => SlotState::Done,
                SlotOutcome::Quarantined(_) => SlotState::Quarantined,
            };
        }
        let mut inner = JournalInner { file, state };
        use std::io::Seek as _;
        inner
            .file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(&path, e))?;
        Ok((
            Journal {
                path,
                inner: Mutex::new(inner),
            },
            outcomes,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one slot outcome (write + fsync before returning).
    /// A record is accepted for the first unrecorded slot (the gap-free
    /// prefix rule) or as the re-attempt of a quarantined slot; anything
    /// else is ignored — see the per-slot state kept by the journal.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`] on write failure. A
    /// failed append leaves the journal usable: the record simply is not
    /// durable and the slot re-runs on resume.
    pub fn record(&self, slot: usize, outcome: &SlotOutcome) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("journal lock");
        let next_missing = inner
            .state
            .iter()
            .position(|s| *s == SlotState::Missing)
            .unwrap_or(inner.state.len());
        let accept = slot < inner.state.len()
            && (slot == next_missing || inner.state[slot] == SlotState::Quarantined);
        if !accept {
            return Ok(());
        }
        let line = serde_json::to_string(&SlotRecord::describe(slot, outcome))
            .map_err(|e| StoreError::Json(e.to_string()))?;
        writeln!(inner.file, "{line}").map_err(|e| io_err(&self.path, e))?;
        inner.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        inner.state[slot] = match outcome {
            SlotOutcome::Done(_) => SlotState::Done,
            SlotOutcome::Quarantined(_) => SlotState::Quarantined,
        };
        Ok(())
    }

    /// Number of slots with a durable record (completed or quarantined).
    pub fn recorded(&self) -> usize {
        self.inner
            .lock()
            .expect("journal lock")
            .state
            .iter()
            .filter(|s| **s != SlotState::Missing)
            .count()
    }
}
