//! Cross-run comparison: two stored [`CampaignResult`]s rendered as a delta
//! table over the paper's §3.2 metric set, with a statistical verdict per
//! metric.
//!
//! This is the benchmarking loop the store exists for: run a campaign
//! against a baseline edition, store it; patch the OS (or swap the server),
//! run again, store that; then diff the two runs to see what the change
//! bought — without re-running either campaign.
//!
//! Each run's slots are independent observations of the same
//! edition/server under one fault each, so the diff computes a 95 %
//! confidence interval per metric *within* each run (Student-t over
//! per-slot values for the magnitude metrics and intervention counts,
//! seeded bootstrap for the ratio metrics) and classifies every delta:
//! **CONFIRMED** when the two intervals do not overlap, **WITHIN-NOISE**
//! when they do — or when no interval exists (single-slot runs). A delta
//! against a zero (or near-zero) baseline has no meaningful percentage;
//! the `delta %` cell reads `n/a` and the verdict stays WITHIN-NOISE.

use depbench::report::{f, pm, TextTable};
use depbench::{CampaignResult, SlotResult};
use simstats::{bootstrap_ratio_ci, t_interval, Ci, BOOTSTRAP_RESAMPLES, BOOTSTRAP_SEED};

/// Below this magnitude a baseline is treated as zero: a percent delta
/// against it would be meaningless (or a division blow-up).
const NEAR_ZERO: f64 = 1e-9;

/// Per-metric bootstrap seed tags for the within-run intervals, disjoint
/// from the cross-iteration tags used by `depbench::aggregate_metrics`.
const DIFF_ER_SEED_TAG: u64 = 11;
const DIFF_AVAIL_SEED_TAG: u64 = 12;
const DIFF_ACT_SEED_TAG: u64 = 13;

/// Within-run 95 % confidence intervals over a campaign's slots, one per
/// diffable metric. `None` when the run has fewer than two slots (or, for
/// ratio metrics, no usable denominators).
#[derive(Clone, Copy, Debug, Default)]
struct RunCis {
    spc: Option<Ci>,
    thr: Option<Ci>,
    rtm: Option<Ci>,
    er: Option<Ci>,
    avail: Option<Ci>,
    act: Option<Ci>,
    mis: Option<Ci>,
    kns: Option<Ci>,
    kcp: Option<Ci>,
    admf: Option<Ci>,
}

fn run_cis(r: &CampaignResult) -> RunCis {
    let slots = &r.slots;
    let n = slots.len() as f64;
    let t_over = |field: fn(&SlotResult) -> f64| -> Option<Ci> {
        let samples: Vec<f64> = slots.iter().map(field).collect();
        t_interval(&samples)
    };
    // A campaign-total count is `n ×` the per-slot mean, so its interval is
    // the per-slot t interval scaled by the slot count.
    let total = |field: fn(&SlotResult) -> f64| -> Option<Ci> {
        t_over(field).map(|ci| Ci {
            mean: ci.mean * n,
            half_width: ci.half_width * n,
        })
    };
    let boot = |pairs: &[(f64, f64)], tag: u64| {
        bootstrap_ratio_ci(
            pairs,
            100.0,
            BOOTSTRAP_SEED.wrapping_add(tag),
            BOOTSTRAP_RESAMPLES,
        )
    };
    let er_pairs: Vec<(f64, f64)> = slots
        .iter()
        .map(|s| (s.measures.errors() as f64, s.measures.ops() as f64))
        .collect();
    let avail_pairs: Vec<(f64, f64)> = slots
        .iter()
        .map(|s| {
            let observed = s.availability.observed.as_micros() as f64;
            let downtime = s.availability.downtime.as_micros() as f64;
            ((observed - downtime).max(0.0), observed)
        })
        .collect();
    let act_pairs: Vec<(f64, f64)> = slots
        .iter()
        .filter_map(|s| s.activation.as_ref())
        .map(|a| (if a.activated() { 1.0 } else { 0.0 }, 1.0))
        .collect();
    RunCis {
        spc: t_over(|s| s.measures.spc_unrounded()),
        thr: t_over(|s| s.measures.thr()),
        rtm: t_over(|s| s.measures.rtm()),
        er: boot(&er_pairs, DIFF_ER_SEED_TAG),
        avail: boot(&avail_pairs, DIFF_AVAIL_SEED_TAG),
        act: boot(&act_pairs, DIFF_ACT_SEED_TAG),
        mis: total(|s| s.watchdog.mis as f64),
        kns: total(|s| s.watchdog.kns as f64),
        kcp: total(|s| s.watchdog.kcp as f64),
        admf: total(|s| s.watchdog.admf() as f64),
    }
}

/// The `delta %` cell: signed percentage of the baseline, or `n/a` when
/// the baseline is (near-)zero.
fn delta_pct(va: f64, vb: f64) -> String {
    if va.abs() < NEAR_ZERO {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (vb - va) / va * 100.0)
    }
}

/// The statistical verdict for one metric row: CONFIRMED only when both
/// runs carry an interval, the intervals do not overlap, and the baseline
/// is far enough from zero for the comparison to mean anything.
fn verdict(va: f64, ci_a: Option<&Ci>, ci_b: Option<&Ci>) -> String {
    match (ci_a, ci_b) {
        (Some(a), Some(b)) if !a.overlaps(b) && va.abs() >= NEAR_ZERO => "CONFIRMED".to_string(),
        _ => "WITHIN-NOISE".to_string(),
    }
}

/// Renders a metric-by-metric comparison of two campaign results.
///
/// Columns are `metric | <name_a> | <name_b> | delta (B-A) | delta % |
/// verdict` where delta is `B − A` (positive = B larger). Metric cells
/// carry `± half-width` when the run has enough slots for an interval.
/// Rows cover the paper's faultload measures (SPCf, THRf, RTMf, ER%f), the
/// watchdog intervention counts (MIS, KNS, KCP, ADMf), the availability
/// timeline (availability %, MTTR, longest outage) and the slot summary
/// (including quarantined slots); structural rows carry no verdict.
pub fn diff_table(name_a: &str, a: &CampaignResult, name_b: &str, b: &CampaignResult) -> TextTable {
    let cis_a = run_cis(a);
    let cis_b = run_cis(b);
    let mut table = TextTable::new([
        "metric",
        name_a,
        name_b,
        "delta (B-A)",
        "delta %",
        "verdict",
    ]);
    table.row([
        "target".to_string(),
        format!("{}/{}", a.edition.name(), a.server.name()),
        format!("{}/{}", b.edition.name(), b.server.name()),
        String::new(),
        String::new(),
        String::new(),
    ]);

    // One measured-metric row: ± cells, signed delta, percent delta and a
    // CONFIRMED / WITHIN-NOISE verdict from the two intervals.
    let judged = |table: &mut TextTable,
                  metric: &str,
                  va: f64,
                  vb: f64,
                  digits: usize,
                  ci_a: Option<&Ci>,
                  ci_b: Option<&Ci>| {
        table.row([
            metric.to_string(),
            pm(va, digits, ci_a),
            pm(vb, digits, ci_b),
            format!("{:+.digits$}", vb - va),
            delta_pct(va, vb),
            verdict(va, ci_a, ci_b),
        ]);
    };
    judged(
        &mut table,
        "SPCf",
        f64::from(a.spc_f()),
        f64::from(b.spc_f()),
        0,
        cis_a.spc.as_ref(),
        cis_b.spc.as_ref(),
    );
    judged(
        &mut table,
        "THRf (ops/s)",
        a.measures.thr(),
        b.measures.thr(),
        2,
        cis_a.thr.as_ref(),
        cis_b.thr.as_ref(),
    );
    judged(
        &mut table,
        "RTMf (ms)",
        a.measures.rtm(),
        b.measures.rtm(),
        2,
        cis_a.rtm.as_ref(),
        cis_b.rtm.as_ref(),
    );
    judged(
        &mut table,
        "ER%f",
        a.measures.er_pct(),
        b.measures.er_pct(),
        2,
        cis_a.er.as_ref(),
        cis_b.er.as_ref(),
    );

    let judged_count = |table: &mut TextTable,
                        metric: &str,
                        va: u64,
                        vb: u64,
                        ci_a: Option<&Ci>,
                        ci_b: Option<&Ci>| {
        table.row([
            metric.to_string(),
            pm(va as f64, 0, ci_a),
            pm(vb as f64, 0, ci_b),
            format!("{:+}", vb as i64 - va as i64),
            delta_pct(va as f64, vb as f64),
            verdict(va as f64, ci_a, ci_b),
        ]);
    };
    judged_count(
        &mut table,
        "MIS",
        a.watchdog.mis,
        b.watchdog.mis,
        cis_a.mis.as_ref(),
        cis_b.mis.as_ref(),
    );
    judged_count(
        &mut table,
        "KNS",
        a.watchdog.kns,
        b.watchdog.kns,
        cis_a.kns.as_ref(),
        cis_b.kns.as_ref(),
    );
    judged_count(
        &mut table,
        "KCP",
        a.watchdog.kcp,
        b.watchdog.kcp,
        cis_a.kcp.as_ref(),
        cis_b.kcp.as_ref(),
    );
    judged_count(
        &mut table,
        "ADMf",
        a.watchdog.admf(),
        b.watchdog.admf(),
        cis_a.admf.as_ref(),
        cis_b.admf.as_ref(),
    );

    let (aa, ab) = (&a.availability, &b.availability);
    table.row([
        "availability %".to_string(),
        pm(aa.availability_pct(), 2, cis_a.avail.as_ref()),
        pm(ab.availability_pct(), 2, cis_b.avail.as_ref()),
        format!("{:+.2}pp", ab.availability_pct() - aa.availability_pct()),
        delta_pct(aa.availability_pct(), ab.availability_pct()),
        verdict(
            aa.availability_pct(),
            cis_a.avail.as_ref(),
            cis_b.avail.as_ref(),
        ),
    ]);

    // Structural / timeline rows: plain delta, no statistical verdict (no
    // per-slot dispersion behind them worth judging).
    let plain = |table: &mut TextTable, metric: &str, va: f64, vb: f64, digits: usize| {
        table.row([
            metric.to_string(),
            f(va, digits),
            f(vb, digits),
            format!("{:+.digits$}", vb - va),
            String::new(),
            String::new(),
        ]);
    };
    let plain_count = |table: &mut TextTable, metric: &str, va: u64, vb: u64| {
        table.row([
            metric.to_string(),
            va.to_string(),
            vb.to_string(),
            format!("{:+}", vb as i64 - va as i64),
            String::new(),
            String::new(),
        ]);
    };
    let ms = |d: simkit::SimDuration| d.as_millis_f64();
    plain(&mut table, "MTTR (ms)", ms(aa.mttr()), ms(ab.mttr()), 1);
    plain(
        &mut table,
        "longest outage (ms)",
        ms(aa.longest_outage),
        ms(ab.longest_outage),
        1,
    );
    plain_count(&mut table, "outages", aa.outages, ab.outages);
    plain_count(&mut table, "repairs", aa.repairs, ab.repairs);

    plain_count(
        &mut table,
        "slots",
        a.slots.len() as u64,
        b.slots.len() as u64,
    );
    plain_count(
        &mut table,
        "affected slots",
        a.affected_slots() as u64,
        b.affected_slots() as u64,
    );
    plain_count(
        &mut table,
        "quarantined slots",
        a.quarantined.len() as u64,
        b.quarantined.len() as u64,
    );

    // Activation rows appear only when at least one run was traced, so
    // diffs of pre-trace (or untraced) runs render exactly as before.
    let (act_a, act_b) = (a.activation_summary(), b.activation_summary());
    if act_a.is_some() || act_b.is_some() {
        let activated =
            |s: &Option<depbench::ActivationSummary>| s.as_ref().map_or(0, |s| s.activated);
        let rate = |s: &Option<depbench::ActivationSummary>| {
            s.as_ref()
                .map_or(0.0, depbench::ActivationSummary::rate_pct)
        };
        plain_count(
            &mut table,
            "activated slots",
            activated(&act_a),
            activated(&act_b),
        );
        judged(
            &mut table,
            "activation rate %",
            rate(&act_a),
            rate(&act_b),
            1,
            cis_a.act.as_ref(),
            cis_b.act.as_ref(),
        );
    }
    table
}

/// [`diff_table`] rendered to a printable string, with a one-line title.
pub fn diff_runs(name_a: &str, a: &CampaignResult, name_b: &str, b: &CampaignResult) -> String {
    format!(
        "campaign diff: {name_a} vs {name_b}\n{}",
        diff_table(name_a, a, name_b, b).render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use depbench::{SlotResult, WatchdogCounts};
    use simos::Edition;
    use specweb::IntervalMeasures;
    use webserver::ServerKind;

    fn slot_measures(ok: u64, err: u64) -> IntervalMeasures {
        let mut measures = IntervalMeasures::new(4);
        for i in 0..ok {
            measures.record_op(
                (i % 4) as usize,
                2048,
                false,
                simkit::SimDuration::from_millis(350),
            );
        }
        for i in 0..err {
            measures.record_op(
                (i % 4) as usize,
                0,
                true,
                simkit::SimDuration::from_millis(900),
            );
        }
        measures.set_duration(simkit::SimDuration::from_secs(10));
        measures
    }

    fn run(ok: u64, err: u64, mis: u64) -> CampaignResult {
        let measures = slot_measures(ok, err);
        let mut availability = depbench::AvailabilityMetrics::default();
        availability.record_repair(simkit::SimDuration::from_millis(100 * mis));
        availability.set_observed(simkit::SimDuration::from_secs(10));
        CampaignResult {
            edition: Edition::Nimbus2000,
            server: ServerKind::Wren,
            measures: measures.clone(),
            watchdog: WatchdogCounts {
                mis,
                kns: 2,
                kcp: 1,
            },
            availability,
            slots: vec![SlotResult {
                fault_id: "f0".to_string(),
                measures,
                watchdog: WatchdogCounts {
                    mis,
                    kns: 2,
                    kcp: 1,
                },
                ended_dead: false,
                availability: depbench::AvailabilityMetrics::default(),
                activation: None,
            }],
            quarantined: Vec::new(),
        }
    }

    /// A three-slot run whose slots serve `base_ok`, `base_ok + step`,
    /// `base_ok + 2·step` operations — enough slots for t intervals, with
    /// a controllable spread.
    fn multi_run(base_ok: u64, step: u64) -> CampaignResult {
        let slots: Vec<SlotResult> = (0..3)
            .map(|i| SlotResult {
                fault_id: format!("f{i}"),
                measures: slot_measures(base_ok + i * step, 0),
                watchdog: WatchdogCounts::default(),
                ended_dead: false,
                availability: depbench::AvailabilityMetrics::default(),
                activation: None,
            })
            .collect();
        let mut merged = IntervalMeasures::new(4);
        for s in &slots {
            merged.merge(&s.measures);
        }
        CampaignResult {
            edition: Edition::Nimbus2000,
            server: ServerKind::Wren,
            measures: merged,
            watchdog: WatchdogCounts::default(),
            availability: depbench::AvailabilityMetrics::default(),
            slots,
            quarantined: Vec::new(),
        }
    }

    #[test]
    fn diff_covers_every_paper_metric() {
        let a = run(100, 0, 0);
        let b = run(80, 20, 5);
        let text = diff_runs("baseline", &a, "patched", &b);
        for metric in [
            "SPCf",
            "THRf",
            "RTMf",
            "ER%f",
            "MIS",
            "KNS",
            "KCP",
            "ADMf",
            "availability",
            "MTTR",
            "longest outage",
            "slots",
            "quarantined",
            "verdict",
        ] {
            assert!(
                text.contains(metric),
                "diff table missing {metric}:\n{text}"
            );
        }
        assert!(text.contains("baseline"));
        assert!(text.contains("patched"));
    }

    #[test]
    fn deltas_are_signed() {
        let a = run(100, 0, 0);
        let b = run(80, 20, 5);
        let text = diff_table("a", &a, "b", &b).render();
        // MIS went 0 -> 5: the delta column shows +5.
        assert!(text.contains("+5"), "expected signed +5 delta:\n{text}");
        let back = diff_table("b", &b, "a", &a).render();
        assert!(back.contains("-5"), "expected signed -5 delta:\n{back}");
    }

    #[test]
    fn activation_rows_appear_only_for_traced_runs() {
        let a = run(100, 0, 0);
        let untraced = diff_table("x", &a, "y", &a).render();
        assert!(
            !untraced.contains("activation"),
            "untraced diff must not grow rows:\n{untraced}"
        );
        let mut b = run(100, 0, 0);
        b.slots[0].activation = Some(depbench::SlotActivation {
            fault_type: "MIFS".to_string(),
            hits: 3,
            first_hit: Some(simkit::SimTime::from_micros(500)),
        });
        let traced = diff_table("x", &a, "y", &b).render();
        assert!(traced.contains("activated slots"), "{traced}");
        assert!(traced.contains("activation rate %"), "{traced}");
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let a = run(100, 0, 3);
        let text = diff_table("x", &a, "y", &a).render();
        assert!(
            text.contains("+0"),
            "identical runs show zero deltas:\n{text}"
        );
        assert!(!text.contains("+3"), "no nonzero count delta:\n{text}");
    }

    #[test]
    fn single_slot_runs_are_never_confirmed() {
        // One slot carries no dispersion information: whatever the deltas,
        // every verdict stays WITHIN-NOISE.
        let a = run(100, 0, 0);
        let b = run(50, 50, 9);
        let text = diff_table("a", &a, "b", &b).render();
        assert!(!text.contains("CONFIRMED"), "{text}");
        assert!(text.contains("WITHIN-NOISE"), "{text}");
    }

    #[test]
    fn separated_intervals_are_confirmed_and_tight_overlap_is_noise() {
        // A serves ~10 ops/s per slot, B ~5 ops/s, each with a spread far
        // smaller than the gap: THRf must be CONFIRMED.
        let a = multi_run(100, 1);
        let b = multi_run(50, 1);
        let text = diff_table("a", &a, "b", &b).render();
        let thr_row = text
            .lines()
            .find(|l| l.starts_with("THRf"))
            .expect("THRf row");
        assert!(thr_row.contains("CONFIRMED"), "{text}");
        assert!(thr_row.contains('\u{b1}'), "THRf cells carry ±:\n{text}");

        // Same means, spread wider than the gap: WITHIN-NOISE.
        let c = multi_run(100, 40);
        let d = multi_run(110, 40);
        let text = diff_table("c", &c, "d", &d).render();
        let thr_row = text
            .lines()
            .find(|l| l.starts_with("THRf"))
            .expect("THRf row");
        assert!(thr_row.contains("WITHIN-NOISE"), "{text}");
    }

    #[test]
    fn zero_baseline_percent_delta_is_na_and_within_noise() {
        // Baseline ER%f is exactly zero; the patched run fails hard. No
        // percent delta can be formed and the verdict must not claim a
        // confirmed regression off a zero denominator.
        let a = multi_run(100, 1);
        let mut b = multi_run(100, 1);
        for slot in &mut b.slots {
            slot.measures = slot_measures(50, 50);
        }
        let mut merged = IntervalMeasures::new(4);
        for s in &b.slots {
            merged.merge(&s.measures);
        }
        b.measures = merged;
        let text = diff_table("a", &a, "b", &b).render();
        let er_row = text
            .lines()
            .find(|l| l.starts_with("ER%f"))
            .expect("ER%f row");
        assert!(er_row.contains("n/a"), "zero baseline delta%:\n{text}");
        assert!(er_row.contains("WITHIN-NOISE"), "{text}");
        assert!(!er_row.contains("CONFIRMED"), "{text}");
    }
}
