//! Cross-run comparison: two stored [`CampaignResult`]s rendered as a delta
//! table over the paper's §3.2 metric set.
//!
//! This is the benchmarking loop the store exists for: run a campaign
//! against a baseline edition, store it; patch the OS (or swap the server),
//! run again, store that; then diff the two runs to see what the change
//! bought — without re-running either campaign.

use depbench::report::{f, pct, TextTable};
use depbench::{ActivationSummary, CampaignResult};

/// Renders a metric-by-metric comparison of two campaign results.
///
/// Columns are `metric | <name_a> | <name_b> | delta` where delta is
/// `B − A` (positive = B larger). Rows cover the paper's faultload
/// measures (SPCf, THRf, RTMf, ER%f), the watchdog intervention counts
/// (MIS, KNS, KCP, ADMf), the availability timeline (availability %, MTTR,
/// longest outage) and the slot summary (including quarantined slots).
pub fn diff_table(name_a: &str, a: &CampaignResult, name_b: &str, b: &CampaignResult) -> TextTable {
    let mut table = TextTable::new(["metric", name_a, name_b, "delta (B-A)"]);
    table.row([
        "target".to_string(),
        format!("{}/{}", a.edition.name(), a.server.name()),
        format!("{}/{}", b.edition.name(), b.server.name()),
        String::new(),
    ]);

    let float = |table: &mut TextTable, metric: &str, va: f64, vb: f64, digits: usize| {
        table.row([
            metric.to_string(),
            f(va, digits),
            f(vb, digits),
            format!("{:+.digits$}", vb - va),
        ]);
    };
    float(
        &mut table,
        "SPCf",
        f64::from(a.spc_f()),
        f64::from(b.spc_f()),
        0,
    );
    float(
        &mut table,
        "THRf (ops/s)",
        a.measures.thr(),
        b.measures.thr(),
        2,
    );
    float(
        &mut table,
        "RTMf (ms)",
        a.measures.rtm(),
        b.measures.rtm(),
        2,
    );
    float(
        &mut table,
        "ER%f",
        a.measures.er_pct(),
        b.measures.er_pct(),
        2,
    );

    let count = |table: &mut TextTable, metric: &str, va: u64, vb: u64| {
        table.row([
            metric.to_string(),
            va.to_string(),
            vb.to_string(),
            format!("{:+}", vb as i64 - va as i64),
        ]);
    };
    count(&mut table, "MIS", a.watchdog.mis, b.watchdog.mis);
    count(&mut table, "KNS", a.watchdog.kns, b.watchdog.kns);
    count(&mut table, "KCP", a.watchdog.kcp, b.watchdog.kcp);
    count(&mut table, "ADMf", a.watchdog.admf(), b.watchdog.admf());

    let (aa, ab) = (&a.availability, &b.availability);
    table.row([
        "availability".to_string(),
        pct(aa.availability()),
        pct(ab.availability()),
        format!("{:+.2}pp", ab.availability_pct() - aa.availability_pct()),
    ]);
    let ms = |d: simkit::SimDuration| d.as_millis_f64();
    float(&mut table, "MTTR (ms)", ms(aa.mttr()), ms(ab.mttr()), 1);
    float(
        &mut table,
        "longest outage (ms)",
        ms(aa.longest_outage),
        ms(ab.longest_outage),
        1,
    );
    count(&mut table, "outages", aa.outages, ab.outages);
    count(&mut table, "repairs", aa.repairs, ab.repairs);

    count(
        &mut table,
        "slots",
        a.slots.len() as u64,
        b.slots.len() as u64,
    );
    count(
        &mut table,
        "affected slots",
        a.affected_slots() as u64,
        b.affected_slots() as u64,
    );
    count(
        &mut table,
        "quarantined slots",
        a.quarantined.len() as u64,
        b.quarantined.len() as u64,
    );

    // Activation rows appear only when at least one run was traced, so
    // diffs of pre-trace (or untraced) runs render exactly as before.
    let (act_a, act_b) = (a.activation_summary(), b.activation_summary());
    if act_a.is_some() || act_b.is_some() {
        let activated = |s: &Option<ActivationSummary>| s.as_ref().map_or(0, |s| s.activated);
        let rate =
            |s: &Option<ActivationSummary>| s.as_ref().map_or(0.0, ActivationSummary::rate_pct);
        count(
            &mut table,
            "activated slots",
            activated(&act_a),
            activated(&act_b),
        );
        float(
            &mut table,
            "activation rate %",
            rate(&act_a),
            rate(&act_b),
            1,
        );
    }
    table
}

/// [`diff_table`] rendered to a printable string, with a one-line title.
pub fn diff_runs(name_a: &str, a: &CampaignResult, name_b: &str, b: &CampaignResult) -> String {
    format!(
        "campaign diff: {name_a} vs {name_b}\n{}",
        diff_table(name_a, a, name_b, b).render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use depbench::{SlotResult, WatchdogCounts};
    use simos::Edition;
    use specweb::IntervalMeasures;
    use webserver::ServerKind;

    fn run(ok: u64, err: u64, mis: u64) -> CampaignResult {
        let mut measures = IntervalMeasures::new(4);
        for i in 0..ok {
            measures.record_op(
                (i % 4) as usize,
                2048,
                false,
                simkit::SimDuration::from_millis(350),
            );
        }
        for i in 0..err {
            measures.record_op(
                (i % 4) as usize,
                0,
                true,
                simkit::SimDuration::from_millis(900),
            );
        }
        measures.set_duration(simkit::SimDuration::from_secs(10));
        let mut availability = depbench::AvailabilityMetrics::default();
        availability.record_repair(simkit::SimDuration::from_millis(100 * mis));
        availability.set_observed(simkit::SimDuration::from_secs(10));
        CampaignResult {
            edition: Edition::Nimbus2000,
            server: ServerKind::Wren,
            measures: measures.clone(),
            watchdog: WatchdogCounts {
                mis,
                kns: 2,
                kcp: 1,
            },
            availability,
            slots: vec![SlotResult {
                fault_id: "f0".to_string(),
                measures,
                watchdog: WatchdogCounts {
                    mis,
                    kns: 2,
                    kcp: 1,
                },
                ended_dead: false,
                availability: depbench::AvailabilityMetrics::default(),
                activation: None,
            }],
            quarantined: Vec::new(),
        }
    }

    #[test]
    fn diff_covers_every_paper_metric() {
        let a = run(100, 0, 0);
        let b = run(80, 20, 5);
        let text = diff_runs("baseline", &a, "patched", &b);
        for metric in [
            "SPCf",
            "THRf",
            "RTMf",
            "ER%f",
            "MIS",
            "KNS",
            "KCP",
            "ADMf",
            "availability",
            "MTTR",
            "longest outage",
            "slots",
            "quarantined",
        ] {
            assert!(
                text.contains(metric),
                "diff table missing {metric}:\n{text}"
            );
        }
        assert!(text.contains("baseline"));
        assert!(text.contains("patched"));
    }

    #[test]
    fn deltas_are_signed() {
        let a = run(100, 0, 0);
        let b = run(80, 20, 5);
        let text = diff_table("a", &a, "b", &b).render();
        // MIS went 0 -> 5: the delta column shows +5.
        assert!(text.contains("+5"), "expected signed +5 delta:\n{text}");
        let back = diff_table("b", &b, "a", &a).render();
        assert!(back.contains("-5"), "expected signed -5 delta:\n{back}");
    }

    #[test]
    fn activation_rows_appear_only_for_traced_runs() {
        let a = run(100, 0, 0);
        let untraced = diff_table("x", &a, "y", &a).render();
        assert!(
            !untraced.contains("activation"),
            "untraced diff must not grow rows:\n{untraced}"
        );
        let mut b = run(100, 0, 0);
        b.slots[0].activation = Some(depbench::SlotActivation {
            fault_type: "MIFS".to_string(),
            hits: 3,
            first_hit: Some(simkit::SimTime::from_micros(500)),
        });
        let traced = diff_table("x", &a, "y", &b).render();
        assert!(traced.contains("activated slots"), "{traced}");
        assert!(traced.contains("activation rate %"), "{traced}");
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let a = run(100, 0, 3);
        let text = diff_table("x", &a, "y", &a).render();
        assert!(
            text.contains("+0"),
            "identical runs show zero deltas:\n{text}"
        );
        assert!(!text.contains("+3"), "no nonzero count delta:\n{text}");
    }
}
