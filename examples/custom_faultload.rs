//! Build a *custom* faultload — the methodology is not tied to web servers.
//!
//! The paper closes by noting the approach works for any domain (e.g. OLTP /
//! DBMS benchmarking). This example shows the three knobs a benchmark
//! designer has:
//!
//! 1. a **custom operator library** (here: only Checking-class faults, for a
//!    validation-robustness study),
//! 2. a **custom FIT subset** (here: only the file-handling API),
//! 3. the standard **fine-tuning** flow against whichever targets matter.
//!
//! Run with: `cargo run -p examples --bin custom_faultload`

use simos::{Edition, Os, OsApi};
use swfit_core::{
    operators::{MiaOp, MlacOp, WlecOp},
    FaultType, Scanner,
};

fn main() {
    let os = Os::boot(Edition::NimbusXp).expect("OS boots");

    // 1. Checking-class operators only (MIA, MLAC, WLEC) — the ODC class
    //    that models missing/wrong validation.
    let scanner =
        Scanner::with_operators(vec![Box::new(MiaOp), Box::new(MlacOp), Box::new(WlecOp)])
            .expect("unique operator names");
    println!("custom library: {} operators", scanner.operator_count());

    // 2. Restrict the FIT to the file-handling services.
    let file_api: Vec<String> = [
        OsApi::NtOpenFile,
        OsApi::NtCreateFile,
        OsApi::NtReadFile,
        OsApi::NtWriteFile,
        OsApi::NtClose,
        OsApi::ReadFile,
        OsApi::WriteFile,
        OsApi::CloseHandle,
        OsApi::SetFilePointer,
    ]
    .iter()
    .map(|f| f.symbol().to_string())
    .collect();

    let faultload = scanner.scan_functions(os.program().image(), &file_api);
    println!(
        "checking-faults-in-file-API faultload: {} faults",
        faultload.len()
    );
    for (t, n) in faultload.counts_by_type() {
        if n > 0 {
            println!("  {t:5} {n:3}");
        }
    }
    assert!(faultload.faults.iter().all(|f| matches!(
        f.fault_type,
        FaultType::Mia | FaultType::Mlac | FaultType::Wlec
    )));

    // 3. The artifact round-trips like any other faultload.
    let json = faultload.to_json().expect("serializes");
    println!(
        "\nsaved {} bytes; first fault: {}",
        json.len(),
        faultload
            .faults
            .first()
            .map_or("none".into(), ToString::to_string)
    );

    // Show where the faults sit, per function.
    let mut per_func: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in &faultload.faults {
        *per_func.entry(f.func.as_str()).or_default() += 1;
    }
    println!("\nfaults per FIT function:");
    for (func, n) in per_func {
        println!("  {func:25} {n}");
    }
}
