//! Compare two web servers' dependability — the paper's case study in
//! miniature.
//!
//! Boots the 2000-like OS edition, builds a fine-tuned faultload for the
//! profiled API subset, then benchmarks Heron (Apache-like) and Wren
//! (Abyss-like) against the same faultload and prints the §3.2 metrics
//! side by side.
//!
//! Run with: `cargo run --release -p examples --bin compare_webservers`

use depbench::{
    profile_servers, Campaign, CampaignConfig, DependabilityMetrics, ProfilePhaseConfig,
};
use simos::{Edition, Os};
use swfit_core::Scanner;
use webserver::ServerKind;

fn main() {
    let edition = Edition::Nimbus2000;

    // Fine-tune the faultload with the four-server profile (§2.4).
    let profile_cfg = ProfilePhaseConfig::default();
    let profile = profile_servers(edition, &ServerKind::ALL, &profile_cfg);
    let selected = profile.select_functions(profile_cfg.min_avg_pct);
    println!(
        "profiled {} servers; {} API functions selected ({:.1} % call coverage)",
        ServerKind::ALL.len(),
        selected.len(),
        profile.coverage_pct(&selected)
    );

    let os = Os::boot(edition).expect("OS boots");
    let mut faultload = Scanner::standard().scan_functions(os.program().image(), &selected);
    // Keep the demo quick: sample every 4th fault.
    faultload.faults = faultload.faults.into_iter().step_by(4).collect();
    println!("faultload: {} faults (sampled)\n", faultload.len());

    let cfg = CampaignConfig::builder()
        .parallelism(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .build();
    let mut rows = Vec::new();
    for kind in ServerKind::BENCHMARKED {
        let campaign = Campaign::new(edition, kind, cfg);
        let baseline = campaign.run_profile_mode(0).expect("profile mode runs");
        let result = campaign
            .run_injection(&faultload, 0)
            .expect("injection campaign runs");
        let m = DependabilityMetrics::from_runs(&baseline, &result);
        println!(
            "{kind} ({}):  SPC {} -> {}   THR {:.1} -> {:.1}   ER% {:.1}   MIS {}  KNS {}  KCP {}  ADMf {}",
            kind.paper_analogue(),
            m.spc_baseline,
            m.spc_f,
            m.thr_baseline,
            m.thr_f,
            m.er_pct_f,
            m.watchdog.mis,
            m.watchdog.kns,
            m.watchdog.kcp,
            m.admf()
        );
        rows.push((kind, m));
    }

    let heron = &rows[0].1;
    let wren = &rows[1].1;
    println!("\nconclusions (the paper's Table 5 reading):");
    println!(
        "  error rate:    heron {:.1} % vs wren {:.1} %  -> {} propagates fewer errors",
        heron.er_pct_f,
        wren.er_pct_f,
        if heron.er_pct_f <= wren.er_pct_f {
            "heron"
        } else {
            "wren"
        }
    );
    println!(
        "  admin effort:  heron {} vs wren {}            -> {} needs less intervention",
        heron.admf(),
        wren.admf(),
        if heron.admf() <= wren.admf() {
            "heron"
        } else {
            "wren"
        }
    );
    println!(
        "  perf retained: heron {:.0} % vs wren {:.0} % of baseline THR",
        heron.thr_retention() * 100.0,
        wren.thr_retention() * 100.0
    );
}
