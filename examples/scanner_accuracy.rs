//! Scanner-accuracy ablation: precision/recall against compiler ground
//! truth.
//!
//! G-SWFIT's credibility rests on the claim that pattern scanning over the
//! executable finds (only) the locations where a source-level fault could
//! have produced the code. Our compiler records where every construct
//! landed; the scanner never sees that map, so we can score it — per fault
//! type, on both OS editions.
//!
//! The same ground truth scores every fault-model pack: the built-in
//! library first, then each bundled pack compiled from its declarative
//! spec. The `odc-classic` rows must match the built-in rows exactly — the
//! pack is the same 12 operators expressed as data.
//!
//! Run with: `cargo run -p examples --bin scanner_accuracy`

use simos::{Edition, Os};
use swfit_core::{accuracy, Faultload, Scanner};

fn print_report(program: &minic::Program, faultload: &Faultload) {
    let report = accuracy::measure(faultload, program.constructs());
    println!(
        "{:6} {:>9} {:>6} {:>8} {:>10} {:>8}",
        "type", "expected", "found", "matched", "precision", "recall"
    );
    for (t, pr) in &report.per_type {
        println!(
            "{:6} {:>9} {:>6} {:>8} {:>9.1}% {:>7.1}%",
            t.acronym(),
            pr.expected,
            pr.found,
            pr.matched,
            pr.precision() * 100.0,
            pr.recall() * 100.0
        );
    }
    println!(
        "overall: precision {:.1} %, recall {:.1} %\n",
        report.overall_precision() * 100.0,
        report.overall_recall() * 100.0
    );
}

fn main() {
    for edition in Edition::ALL {
        let os = Os::boot(edition).expect("OS boots");
        let program = os.program();
        let builtin = Scanner::standard().scan_image(program.image());

        println!(
            "=== {edition} ({} instructions, {} faults found) ===",
            program.image().len(),
            builtin.len()
        );
        println!("--- built-in operator library ---");
        print_report(program, &builtin);

        // Every bundled pack is scored against the same ground truth.
        for pack in faultpack::bundled() {
            let scanner =
                faultpack::scanner_for(std::slice::from_ref(&pack)).expect("bundled packs compile");
            let faultload = scanner.scan_image(program.image());
            println!(
                "--- pack {} v{} ({} operators, {} faults) ---",
                pack.name(),
                pack.spec().version,
                scanner.operators().len(),
                faultload.len()
            );
            print_report(program, &faultload);
            if pack.name() == "odc-classic" {
                assert_eq!(
                    faultload.to_json().unwrap(),
                    builtin.to_json().unwrap(),
                    "odc-classic must be byte-identical to the built-in library"
                );
                println!("(odc-classic faultload verified byte-identical to the built-in scan)\n");
            }
        }
    }
    println!("(MLPC/WAEP/WPFV have no single-construct ground truth and are not scored.)");
}
