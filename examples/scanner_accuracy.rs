//! Scanner-accuracy ablation: precision/recall against compiler ground
//! truth.
//!
//! G-SWFIT's credibility rests on the claim that pattern scanning over the
//! executable finds (only) the locations where a source-level fault could
//! have produced the code. Our compiler records where every construct
//! landed; the scanner never sees that map, so we can score it — per fault
//! type, on both OS editions.
//!
//! Run with: `cargo run -p examples --bin scanner_accuracy`

use simos::{Edition, Os};
use swfit_core::{accuracy, Scanner};

fn main() {
    for edition in Edition::ALL {
        let os = Os::boot(edition).expect("OS boots");
        let program = os.program();
        let faultload = Scanner::standard().scan_image(program.image());
        let report = accuracy::measure(&faultload, program.constructs());

        println!(
            "=== {edition} ({} instructions, {} faults found) ===",
            program.image().len(),
            faultload.len()
        );
        println!(
            "{:6} {:>9} {:>6} {:>8} {:>10} {:>8}",
            "type", "expected", "found", "matched", "precision", "recall"
        );
        for (t, pr) in &report.per_type {
            println!(
                "{:6} {:>9} {:>6} {:>8} {:>9.1}% {:>7.1}%",
                t.acronym(),
                pr.expected,
                pr.found,
                pr.matched,
                pr.precision() * 100.0,
                pr.recall() * 100.0
            );
        }
        println!(
            "overall: precision {:.1} %, recall {:.1} %\n",
            report.overall_precision() * 100.0,
            report.overall_recall() * 100.0
        );
    }
    println!("(MLPC/WAEP/WPFV have no single-construct ground truth and are not scored.)");
}
