//! Quickstart: the G-SWFIT pipeline end-to-end on a small program.
//!
//! 1. Compile a MiniC program to MVM machine code.
//! 2. Scan it with the standard operator library (step 1 of G-SWFIT).
//! 3. Save/reload the faultload — it is a storable artifact.
//! 4. Inject one fault, watch the behaviour change, restore, and verify the
//!    pristine behaviour returns (step 2 of G-SWFIT).
//!
//! Run with: `cargo run -p examples --bin quickstart`

use mvm::{Memory, NoHcalls, Vm};
use swfit_core::{FaultType, Faultload, Injector, Scanner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small "target module": a bounded counter with validation.
    let source = r#"
        global total = 0;

        fn clamp(x, lo, hi) {
            if (x < lo) { return lo; }
            if (x > hi) { return hi; }
            return x;
        }

        fn account(amount) {
            var v = 0;
            if (amount > 0 && amount < 1000) {
                v = clamp(amount, 10, 100);
                total = total + v;
            }
            return total;
        }
    "#;
    let mut program = minic::compile("quickstart", source)?;
    println!(
        "compiled {} instructions across {} functions",
        program.image().len(),
        program.image().funcs().len()
    );

    // --- step 1: scan for fault locations -------------------------------
    let faultload = Scanner::standard().scan_image(program.image());
    println!("\nscan found {} fault locations:", faultload.len());
    for (t, n) in faultload.counts_by_type() {
        if n > 0 {
            println!("  {t:5} {n:3}  ({})", t.description());
        }
    }

    // --- the faultload is an artifact ------------------------------------
    let json = faultload.to_json()?;
    let reloaded = Faultload::from_json(&json)?;
    assert_eq!(reloaded, faultload);
    println!("\nfaultload serializes to {} bytes of JSON", json.len());

    // --- step 2: inject, observe, restore --------------------------------
    let run = |program: &minic::Program| -> Result<i64, Box<dyn std::error::Error>> {
        let mut vm = Vm::new();
        let mut mem = Memory::new(8192);
        let mut result = 0;
        for amount in [50, 5000, 30, -7, 80] {
            result = vm
                .call(
                    program.image(),
                    &mut mem,
                    &mut NoHcalls,
                    "account",
                    &[amount],
                )?
                .return_value;
        }
        Ok(result)
    };

    let pristine = run(&program)?;
    println!("\npristine result: {pristine}");

    let mifs = faultload
        .faults
        .iter()
        .find(|f| f.fault_type == FaultType::Mifs && f.func == "account")
        .expect("an MIFS site exists in `account`");
    println!("injecting {mifs}");

    let mut injector = Injector::new();
    injector.inject(program.image_mut(), mifs)?;
    let faulty = run(&program)?;
    println!("faulty result:   {faulty}");
    injector.restore(program.image_mut());
    let restored = run(&program)?;
    println!("restored result: {restored}");

    assert_ne!(pristine, faulty, "the missing-if fault must be visible");
    assert_eq!(pristine, restored, "restore must be exact");
    println!("\nquickstart OK: fault emulated and cleanly removed");
    Ok(())
}
