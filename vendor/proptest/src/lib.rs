//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace uses: the
//! [`Strategy`](strategy::Strategy)
//! trait with `prop_map`/`prop_recursive`/`boxed`, range and `any::<T>()`
//! strategies, `collection::vec`, `sample::select`, a char-class string
//! strategy, and the `proptest!`/`prop_oneof!`/`prop_assert*!`/`prop_assume!`
//! macros. Unlike real proptest there is no shrinking: a failing case panics
//! with the generated inputs' debug output via the assertion message.
//!
//! Generation is fully deterministic — each test's RNG is seeded from the
//! test's name, so failures reproduce across runs.

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub mod test_runner {
    //! Test execution: config, RNG, and the case-level error type.

    /// Controls how many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input doesn't satisfy a `prop_assume!` precondition; the case
        /// is discarded without counting against the property.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError::Fail(msg.to_string())
        }

        /// A discarded case.
        pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError::Reject(msg.to_string())
        }
    }

    /// SplitMix64 generator: tiny, fast, and good enough for test-input
    /// generation. Deterministic per test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from a test's name (FNV-1a), so each property gets its
        /// own reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Drives one property: samples inputs, runs the case closure, panics on
    /// the first failure. Called by the `proptest!` macro expansion.
    pub fn run_property(
        name: &str,
        config: ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = u64::from(config.cases) * 16 + 256;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "property {name}: too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so differently-typed strategies can mix
        /// (e.g. in `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for the
        /// shallower levels and returns the strategy for one level deeper.
        /// Depth is capped at `depth`; `_desired_size` and `_expected_branch`
        /// are accepted for API compatibility but unused (no shrinking here).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                // Lean toward leaves (2:1) so generated trees stay small.
                strat = Union::weighted_leaf(leaf.clone(), deeper).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            Self: Sized + 'static,
        {
            self
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform (or leaf-weighted) choice among boxed alternatives; what
    /// `prop_oneof!` builds.
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
        leaf_bias: bool,
    }

    impl<T> Union<T> {
        /// Uniform choice among `arms`. Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union {
                arms,
                leaf_bias: false,
            }
        }

        /// Two-arm union that picks the first arm ~2/3 of the time — used by
        /// `prop_recursive` to keep trees shallow on average.
        pub(crate) fn weighted_leaf(leaf: BoxedStrategy<T>, deep: BoxedStrategy<T>) -> Union<T> {
            Union {
                arms: vec![leaf, deep],
                leaf_bias: true,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = if self.leaf_bias {
                usize::from(rng.below(3) == 0)
            } else {
                rng.below(self.arms.len() as u64) as usize
            };
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // All workspace ranges fit far inside u64.
                    let off = rng.below(span as u64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! int_range_incl_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = rng.below(span as u64) as i128;
                    (*self.start() as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_incl_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start() <= self.end(), "empty range strategy");
            self.start() + rng.unit() * (self.end() - self.start())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).sample(rng) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitives.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `T`.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, broad-range floats; NaN/inf excluded on purpose.
            (rng.unit() - 0.5) * 2e12
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy choosing uniformly from `options`. Panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod string {
    //! Just enough regex support for string strategies of the form
    //! `"[class]{lo,hi}"` (plus plain literals).

    use crate::test_runner::TestRng;

    /// Samples a string matching `pattern`. Supports a single char class
    //  with `a-z` ranges followed by a `{lo,hi}` repetition; any other
    /// pattern is treated as a literal.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        match parse(pattern) {
            Some((alphabet, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => pattern.to_string(),
        }
    }

    fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rep) = rest.split_once(']')?;
        let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = rep.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        if hi < lo {
            return None;
        }
        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            // `a-z` is a range unless the dash is first/last in the class.
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_with_ranges_and_literals() {
            let mut rng = TestRng::from_name("class");
            for _ in 0..200 {
                let s = sample_pattern("[a-zA-Z0-9 /._-]{0,30}", &mut rng);
                assert!(s.len() <= 30);
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || " /._-".contains(c)));
            }
        }

        #[test]
        fn non_pattern_is_literal() {
            let mut rng = TestRng::from_name("lit");
            assert_eq!(sample_pattern("hello", &mut rng), "hello");
        }
    }
}

/// Defines property tests. Each `fn` inside runs `config.cases` times with
/// freshly sampled inputs; `#[test]` and doc attributes written on the fns
/// pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_property(
                stringify!($name),
                $cfg,
                |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng; $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&$strat, $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&$strat, $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property; failure reports the case instead
/// of unwinding through generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}\n{}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![(0i32..10).prop_map(|x| x * 2), Just(99i32),];
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v == 99 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 1,
                T::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i32..5)
            .prop_map(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| T::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = crate::test_runner::TestRng::from_name("recursive");
        for _ in 0..100 {
            assert!(depth(&Strategy::sample(&strat, &mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 1u64..100, y: u8, v in crate::collection::vec(0i32..4, 0..6)) {
            prop_assume!(x != 13);
            prop_assert!((1..100).contains(&x));
            let _ = y;
            prop_assert!(v.len() < 6);
            for e in v {
                prop_assert!((0..4).contains(&e));
            }
        }

        #[test]
        fn early_return_ok_is_allowed(x in 0u32..10) {
            if x > 5 {
                return Ok(());
            }
            prop_assert!(x <= 5);
        }
    }
}
