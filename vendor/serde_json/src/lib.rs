//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] data model to JSON text (compact
//! and pretty, 2-space indent like real `serde_json`) and parses JSON back.
//! Output for the shapes this workspace serializes matches what real
//! serde_json would emit: objects in struct field order, externally-tagged
//! enums, `null` for `None`.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON cannot represent them).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to pretty JSON (2-space indent).
///
/// # Errors
///
/// Returns an error for non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses a `T` from JSON text.
///
/// # Errors
///
/// Returns an error describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // `{}` on f64 prints the shortest representation that
            // round-trips, but drops the decimal point for integral values;
            // serde_json keeps it (`1.0`), and so do we so floats stay
            // floats across a round-trip.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, x, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run, then decode it as UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("bad UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = vec![(1u64, -2i64), (3, 4)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1,-2],[3,4]]");
        let back: Vec<(u64, i64)> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Vec<(u64, i64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_their_point() {
        let s = to_string(&vec![1.0f64, 2.5]).unwrap();
        assert_eq!(s, "[1.0,2.5]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1.0, 2.5]);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "quote \" slash \\ newline \n tab \t".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn option_is_null() {
        let none: Option<u64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        let back: Option<u64> = from_str("null").unwrap();
        assert_eq!(back, None);
        let back: Option<u64> = from_str("7").unwrap();
        assert_eq!(back, Some(7));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<u64>("1 x").is_err());
    }

    #[test]
    fn unicode_passes_through() {
        let s = "héllo ☂".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
