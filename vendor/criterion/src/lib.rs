//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer: each benchmark runs one warmup iteration plus
//! `sample_size` timed samples and prints the mean time per iteration.
//! No statistics, plots, or comparison against saved baselines.

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from just a parameter value (name comes from the group).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation; recorded so per-element/byte rates print.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    samples: u32,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` once to warm up, then `samples` timed iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(self.samples.max(1));
    }
}

fn report(label: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench: {label:<48} {time:>12}  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            println!("bench: {label:<48} {time:>12}  ({rate:.1} MiB/s)");
        }
        _ => println!("bench: {label:<48} {time:>12}"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing a prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group (and the parent driver).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1) as u32;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-exported so `criterion::black_box` callers work; prefer
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one group function, optionally with a
/// custom `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    criterion_group! {
        name = benches_cfg;
        config = Criterion::default().sample_size(3);
        targets = quick,
    }

    #[test]
    fn groups_run() {
        benches();
        benches_cfg();
    }
}
