//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token streams (the build environment
//! has no `syn`/`quote`), so the supported shapes are exactly the ones this
//! workspace uses:
//!
//! * structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`; a skipped field implies
//!   `default` on the read side, since its key may be absent),
//! * tuple structs (newtype and multi-field),
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, as real serde_json would emit them).
//!
//! Generics are deliberately unsupported; the derive panics with a clear
//! message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-model form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (value-model form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

struct Field {
    name: String,
    default: bool,
    /// Path from `#[serde(skip_serializing_if = "path")]`: a `fn(&T) -> bool`
    /// deciding whether the field's key is omitted from the object.
    skip_if: Option<String>,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct(name),
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    }
}

/// Field-level `#[serde(...)]` options recognized by the stand-in.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip_if: Option<String>,
}

/// Advances `i` past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility, returning the `#[serde(...)]` options seen.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let found = parse_serde_attr(g.stream());
                    attrs.default |= found.default;
                    if found.skip_if.is_some() {
                        attrs.skip_if = found.skip_if;
                    }
                    *i += 2;
                } else {
                    panic!("dangling `#`");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return attrs,
        }
    }
}

fn parse_serde_attr(attr: TokenStream) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return attrs,
    }
    let Some(TokenTree::Group(g)) = toks.next() else {
        return attrs;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) if id.to_string() == "default" => attrs.default = true,
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                // Expect `= "path::to::predicate"`.
                match (inner.get(j + 1), inner.get(j + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let quoted = lit.to_string();
                        let path = quoted
                            .strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!("skip_serializing_if needs a string literal, got {quoted}")
                            });
                        attrs.skip_if = Some(path.to_string());
                        j += 2;
                    }
                    _ => panic!("malformed skip_serializing_if attribute"),
                }
            }
            _ => {}
        }
        j += 1;
    }
    attrs
}

/// Splits a field/variant list on top-level commas. Angle brackets are plain
/// `Punct`s in token streams, so nesting like `BTreeMap<String, i64>` is
/// tracked by counting `<`/`>` at group level zero.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            let attrs = skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, got {other}"),
            };
            Field {
                name,
                // A skipped field's key may be absent on read, so skipping
                // implies a default on deserialization.
                default: attrs.default || attrs.skip_if.is_some(),
                skip_if: attrs.skip_if,
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, got {other}"),
            };
            i += 1;
            match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Variant::Struct(name, parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Variant::Tuple(name, count_tuple_fields(g.stream()))
                }
                // `Name = 0x01` discriminants and bare `Name` are both unit.
                _ => Variant::Unit(name),
            }
        })
        .collect()
}

/// One push statement per field; a `skip_serializing_if` predicate gates the
/// push, omitting the key entirely when it returns true.
fn field_to_push(f: &Field, access: &str) -> String {
    let push = format!(
        "__fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value({access})));",
        n = f.name
    );
    match &f.skip_if {
        Some(path) => format!("if !{path}({access}) {{ {push} }}"),
        None => push,
    }
}

/// An object expression built from field pushes (the form every named-field
/// shape uses, so skippable and plain fields share one code path).
fn fields_to_object(fields: &[Field], access: &dyn Fn(&Field) -> String) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| field_to_push(f, &access(f)))
        .collect();
    format!(
        "{{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new(); \
           {pushes} ::serde::Value::Object(__fields) }}"
    )
}

fn field_from_obj(f: &Field, obj: &str, ty_name: &str) -> String {
    if f.default {
        format!(
            "{n}: match {obj}.get(\"{n}\") {{ \
               Some(__v) => ::serde::Deserialize::from_value(__v)?, \
               None => ::core::default::Default::default(), \
             }},",
            n = f.name
        )
    } else {
        format!(
            "{n}: match {obj}.get(\"{n}\") {{ \
               Some(__v) => ::serde::Deserialize::from_value(__v)?, \
               None => return Err(::serde::DeError::msg(\
                   \"missing field `{n}` in {ty_name}\")), \
             }},",
            n = f.name
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct(name, fields) => (
            name,
            fields_to_object(fields, &|f| format!("&self.{}", f.name)),
        ),
        Item::TupleStruct(name, 1) => (name, "::serde::Serialize::to_value(&self.0)".to_string()),
        Item::TupleStruct(name, n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            (name, format!("::serde::Value::Array(vec![{entries}])"))
        }
        Item::UnitStruct(name) => (name, "::serde::Value::Null".to_string()),
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => {
                        format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                    }
                    Variant::Tuple(vn, 1) => format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![(\
                           \"{vn}\".to_string(), ::serde::Serialize::to_value(__x0))]),"
                    ),
                    Variant::Tuple(vn, n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let vals: String = pats
                            .iter()
                            .map(|p| format!("::serde::Serialize::to_value({p}),"))
                            .collect();
                        format!(
                            "{name}::{vn}({pat}) => ::serde::Value::Object(vec![(\
                               \"{vn}\".to_string(), \
                               ::serde::Value::Array(vec![{vals}]))]),",
                            pat = pats.join(", ")
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let pat: String = fields.iter().map(|f| format!("{}, ", f.name)).collect();
                        let inner = fields_to_object(fields, &|f| f.name.clone());
                        format!(
                            "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(vec![(\
                               \"{vn}\".to_string(), {inner})]),"
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| field_from_obj(f, "__value", name))
                .collect();
            (
                name,
                format!(
                    "match __value {{ \
                       ::serde::Value::Object(_) => Ok({name} {{ {inits} }}), \
                       __other => Err(::serde::DeError::msg(format!(\
                           \"expected object for {name}, got {{__other:?}}\"))), \
                     }}"
                ),
            )
        }
        Item::TupleStruct(name, 1) => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))"),
        ),
        Item::TupleStruct(name, n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?,"))
                .collect();
            (
                name,
                format!(
                    "match __value {{ \
                       ::serde::Value::Array(__xs) if __xs.len() == {n} => \
                           Ok({name}({inits})), \
                       __other => Err(::serde::DeError::msg(format!(\
                           \"expected {n}-element array for {name}, got {{__other:?}}\"))), \
                     }}"
                ),
            )
        }
        Item::UnitStruct(name) => (name, format!("Ok({name})")),
        Item::Enum(name, variants) => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!("\"{vn}\" => Ok({name}::{vn}),")),
                    _ => None,
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(vn, 1) => Some(format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Variant::Tuple(vn, n) => {
                        let inits: String = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?,"))
                            .collect();
                        Some(format!(
                            "\"{vn}\" => match __inner {{ \
                               ::serde::Value::Array(__xs) if __xs.len() == {n} => \
                                   Ok({name}::{vn}({inits})), \
                               __other => Err(::serde::DeError::msg(format!(\
                                   \"bad payload for {name}::{vn}: {{__other:?}}\"))), \
                             }},"
                        ))
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| field_from_obj(f, "__inner", name))
                            .collect();
                        Some(format!(
                            "\"{vn}\" => match __inner {{ \
                               ::serde::Value::Object(_) => Ok({name}::{vn} {{ {inits} }}), \
                               __other => Err(::serde::DeError::msg(format!(\
                                   \"bad payload for {name}::{vn}: {{__other:?}}\"))), \
                             }},"
                        ))
                    }
                })
                .collect();
            (
                name,
                format!(
                    "match __value {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => Err(::serde::DeError::msg(format!(\
                             \"unknown {name} variant `{{__other}}`\"))), \
                       }}, \
                       ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
                         let (__tag, __inner) = &__fields[0]; \
                         match __tag.as_str() {{ \
                           {data_arms} \
                           __other => Err(::serde::DeError::msg(format!(\
                               \"unknown {name} variant `{{__other}}`\"))), \
                         }} \
                       }} \
                       __other => Err(::serde::DeError::msg(format!(\
                           \"expected {name} variant, got {{__other:?}}\"))), \
                     }}"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__value: &::serde::Value) -> \
               ::core::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
