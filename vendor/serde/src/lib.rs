//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of serde's surface the workspace actually uses: the
//! [`Serialize`] / [`Deserialize`] traits (re-exported alongside the derive
//! macros of the same names) built on a self-describing [`Value`] data
//! model. `serde_json` (also vendored) serializes [`Value`] trees to JSON
//! text and parses them back.
//!
//! The data model is deliberately simple — structs become objects in field
//! order, enums use serde's externally-tagged representation — so output is
//! deterministic and compatible with what real serde_json would produce for
//! these types.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value — the interchange format between the
/// `Serialize`/`Deserialize` traits and the `serde_json` front end.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range (or naturally unsigned).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (field order for structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// The value-model representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first shape/type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range")))?,
                    other => return Err(DeError::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range"))),
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::msg(format!("{n} out of range"))),
                    other => Err(DeError::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_uint!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let xs = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(xs)
            .map_err(|xs| DeError::msg(format!("expected {N} elements, got {}", xs.len())))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    // JSON object keys are strings; strings and unit enum
                    // variants serialize as Str, integers are stringified
                    // (matching real serde_json's map-key behavior).
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        Value::I64(n) => n.to_string(),
                        Value::U64(n) => n.to_string(),
                        other => panic!("unsupported map key {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::Str(k.clone()))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(xs) if xs.len() == LEN => {
                        Ok(($($t::from_value(&xs[$n])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected {LEN}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let pair = (3u32, -4i64);
        assert_eq!(<(u32, i64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn big_u64_uses_u64_variant() {
        let big = u64::MAX - 1;
        assert_eq!(big.to_value(), Value::U64(big));
        assert_eq!(u64::from_value(&Value::U64(big)).unwrap(), big);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::I64(1)).is_err());
    }
}
